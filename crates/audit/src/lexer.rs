//! A hand-rolled Rust lexer: just enough tokenization to audit source
//! files without a compiler frontend or any third-party crate.
//!
//! The scanner strips what cannot carry findings — string/char literal
//! *contents*, comments — while preserving what can: identifiers, path
//! separators (`::`), member access (`.`), brackets, and attribute
//! punctuation, each tagged with its 1-based source line. Line comments
//! are kept aside verbatim because waivers
//! (`// vine-audit: allow(Axxx) -- reason`) live in them.
//!
//! Deliberate simplifications, safe for auditing purposes:
//!
//! * String literals become a single `"<str>"` token (their text can
//!   never trigger a rule, but their *position* keeps token adjacency
//!   honest for sequence matches).
//! * Numbers are folded to a single token retaining their text, so the
//!   float-accumulation rule can see `0.0` in `fold(0.0, ..)`.
//! * Lifetimes (`'a`) are distinguished from char literals by lookahead
//!   and dropped entirely.

/// One token with the line it started on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token text: an identifier, a number, `"<str>"`, or punctuation
    /// (single char, except the combined `::`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A lexed source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// Line comments, `(line, text-after-slashes)`, in source order.
    /// Doc comments (`///`, `//!`) are included; waiver parsing ignores
    /// them unless they carry the waiver marker.
    pub comments: Vec<(u32, String)>,
    /// Total line count of the file (for the module-size ratchet).
    pub lines: u32,
}

/// Tokenize `src`. Never fails: unterminated literals consume to EOF,
/// which is the least-surprising behavior for an auditor that must not
/// crash on the code it polices.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(c);
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            // Swallow any further leading slashes or a doc bang.
            while j < n && (b[j] == '/' || b[j] == '!') {
                j += 1;
            }
            let mut text = String::new();
            while j < n && b[j] != '\n' {
                text.push(b[j]);
                j += 1;
            }
            out.comments.push((start_line, text.trim().to_string()));
            i = j;
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump!(b[j]);
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings: r"..", r#".."#, br#".."# — count the hashes and
        // scan for the matching close.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            b[j] == 'r'
                && j + 1 < n
                && (b[j + 1] == '"' || (b[j + 1] == '#' && raw_str_follows(&b, j + 1)))
        } {
            let tok_line = line;
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            'scan: while j < n {
                if b[j] == '"' {
                    let mut k = j + 1;
                    let mut h = 0;
                    while k < n && b[k] == '#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        j = k;
                        break 'scan;
                    }
                }
                bump!(b[j]);
                j += 1;
            }
            out.toks.push(Tok {
                text: "\"<str>\"".into(),
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Plain (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let tok_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        bump!(ch);
                        j += 1;
                    }
                }
            }
            out.toks.push(Tok {
                text: "\"<str>\"".into(),
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Char literal vs. lifetime: 'x' is a char, 'x (no close) is a
        // lifetime label. '\'' and '\n' are chars with escapes.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                i = j;
            } else {
                let mut j = i + 1;
                while j < n {
                    match b[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                out.toks.push(Tok {
                    text: "'<char>'".into(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let tok_line = line;
            let mut j = i;
            let mut text = String::new();
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                text.push(b[j]);
                j += 1;
            }
            out.toks.push(Tok {
                text,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Number: digits, then an optional fraction and exponent. `1..2`
        // must not swallow the range dots.
        if c.is_ascii_digit() {
            let tok_line = line;
            let mut j = i;
            let mut text = String::new();
            while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                text.push(b[j]);
                j += 1;
            }
            if j + 1 < n && b[j] == '.' && b[j + 1].is_ascii_digit() {
                text.push('.');
                j += 1;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    text.push(b[j]);
                    j += 1;
                }
            }
            out.toks.push(Tok {
                text,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // `::` combined; everything else is single-char punctuation.
        if c == ':' && i + 1 < n && b[i + 1] == ':' {
            out.toks.push(Tok {
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        out.toks.push(Tok {
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out.lines = src.lines().count() as u32;
    out
}

/// After an `r`, a `#...#"` sequence means a raw string (vs. `r#ident`,
/// the raw-identifier syntax).
fn raw_str_follows(b: &[char], mut j: usize) -> bool {
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_paths_and_punct() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            ["use", "std", "::", "collections", "::", "HashMap", ";"]
        );
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let t = texts(r#"let s = "HashMap"; let c = 'x';"#);
        assert!(t.contains(&"\"<str>\"".to_string()));
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(t.contains(&"'<char>'".to_string()));
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let t = texts(r##"let s = r#"thread_rng() "quoted" inside"#; done"##);
        assert!(!t.contains(&"thread_rng".to_string()));
        assert!(t.contains(&"done".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(!t.iter().any(|s| s == "'<char>'"));
        assert!(t.contains(&"str".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let a = 1;\n// vine-audit: allow(A101) -- test reason\nlet b = 2;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].0, 2);
        assert!(l.comments[0].1.starts_with("vine-audit:"));
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let l = lex("/* a /* b */ c */\nfoo");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "foo");
        assert_eq!(l.toks[0].line, 2);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        assert_eq!(texts("1..2"), ["1", ".", ".", "2"]);
        assert_eq!(texts("fold(0.0, f)"), ["fold", "(", "0.0", ",", "f", ")"]);
    }
}
