#![deny(unsafe_code)]

//! # vine-audit — source-level determinism & concurrency auditor
//!
//! Every headline result in this repo rests on one invariant: same seed,
//! bit-identical run. `vine-lint` proves properties of the *workflow*
//! before it runs; this crate proves properties of *our own code*, where
//! one stray `HashMap` iteration feeding a digest or one `Instant::now()`
//! in the sim path silently breaks replay. It is implemented with a
//! hand-rolled lexer ([`lexer`]) — no compiler frontend, no third-party
//! crates — so the hermetic offline build can always run it.
//!
//! Three code families, in the house style of `vine-lint`'s G/R/C/D/F
//! codes:
//!
//! * **A1xx determinism** — unordered-map types in deterministic code,
//!   ambient RNG, wall clocks reachable from simulated paths, ambient
//!   hasher state, non-associative float accumulation in digest code;
//! * **A2xx concurrency** — thread spawns, `Relaxed` atomics, and lock
//!   types outside `vine-exec`'s documented real-execution boundary;
//! * **A3xx hygiene/architecture** — `unwrap`/`expect` in engine hot
//!   paths, a module-size ratchet, cross-crate layering violations, and
//!   malformed or unused waivers.
//!
//! Findings can be **waived** inline with a reason:
//!
//! ```text
//! // vine-audit: allow(A101) -- membership probe only; order unused
//! // vine-audit: allow-file(A103) -- this module IS the wall-clock boundary
//! ```
//!
//! and **grandfathered** by a committed baseline
//! (`results/audit_baseline.txt`): per-(code, file) finding counts that
//! may only ratchet down, plus per-file line counts that cap module
//! growth. The `vine-audit` binary wires this into CI with `--deny`.

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, GateOutcome};

/// How bad a finding is. Mirrors `vine-lint::Severity`; restated here so
/// the auditor keeps its zero-dependency footing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; never gates.
    Info,
    /// Suspicious; gated only through the baseline ratchet.
    Warn,
    /// Breaks a stated invariant; gated through the baseline ratchet.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable audit codes. The code, not the message, is the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `HashMap`/`HashSet` in deterministic (non-exec) code: iteration
    /// order is ambient state that can escape into digests and exports.
    A101,
    /// Ambient or unseeded RNG (`thread_rng`, `from_entropy`,
    /// `rand::random`): replay cannot reproduce the draw stream.
    A102,
    /// Wall clock (`Instant::now`/`SystemTime::now`) outside the real
    /// execution boundary: simulated time must come from the sim clock.
    A103,
    /// Non-associative float accumulation (`sum::<f64>()`, `fold(0.0`)
    /// in histogram/digest/metrics code: result depends on fold order.
    A104,
    /// Ambient hasher state (`RandomState`, `DefaultHasher`): per-process
    /// seeds leak into anything derived from the hashes.
    A105,
    /// Thread spawn outside `vine-exec`'s documented boundary.
    A201,
    /// `Ordering::Relaxed` atomics outside `vine-exec`.
    A202,
    /// Lock types (`Mutex`/`RwLock`/`Condvar`) outside `vine-exec`:
    /// acquisition order is unobservable to the deterministic replay.
    A203,
    /// `unwrap()`/`expect()` in engine hot paths (`vine-core`,
    /// `vine-simcore`): a poisoned invariant aborts the whole facility.
    A301,
    /// Module exceeds the size threshold; growth past the recorded
    /// baseline fails the build (the `engine.rs` ratchet).
    A302,
    /// Cross-crate layering violation: a crate references a `vine-*`
    /// crate its documented architecture layer may not depend on.
    A303,
    /// Malformed waiver (missing `-- reason`) or a waiver that suppresses
    /// nothing: waiver debt must stay honest.
    A304,
}

impl Code {
    /// Every code, in report order — drives the README reference table.
    pub const ALL: [Code; 12] = [
        Code::A101,
        Code::A102,
        Code::A103,
        Code::A104,
        Code::A105,
        Code::A201,
        Code::A202,
        Code::A203,
        Code::A301,
        Code::A302,
        Code::A303,
        Code::A304,
    ];

    /// One-line description (the README reference text).
    pub fn describe(self) -> &'static str {
        match self {
            Code::A101 => "HashMap/HashSet in deterministic code (iteration order can escape)",
            Code::A102 => "ambient or unseeded RNG (thread_rng / from_entropy / rand::random)",
            Code::A103 => "wall clock (Instant/SystemTime::now) outside the execution boundary",
            Code::A104 => "non-associative float accumulation in digest/histogram code",
            Code::A105 => "ambient hasher state (RandomState / DefaultHasher)",
            Code::A201 => "thread spawn outside the vine-exec boundary",
            Code::A202 => "Relaxed atomic ordering outside the vine-exec boundary",
            Code::A203 => "lock types (Mutex/RwLock/Condvar) outside the vine-exec boundary",
            Code::A301 => "unwrap()/expect() in engine hot paths",
            Code::A302 => "module exceeds the size threshold (growth ratchets against baseline)",
            Code::A303 => "cross-crate layering violation",
            Code::A304 => "malformed waiver (no reason) or waiver that suppresses nothing",
        }
    }

    /// Default severity for a finding of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::A101 | Code::A102 | Code::A103 | Code::A105 => Severity::Error,
            Code::A201 | Code::A202 | Code::A203 | Code::A303 => Severity::Error,
            Code::A104 | Code::A301 | Code::A302 | Code::A304 => Severity::Warn,
        }
    }

    /// Parse `"A101"` → `Code::A101`.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.to_string() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding, pointing at a file line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable code.
    pub code: Code,
    /// Severity (usually `code.severity()`).
    pub severity: Severity,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong, with the tokens that show it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{}: {}",
            self.severity, self.code, self.path, self.line, self.message
        )
    }
}

/// Sort key shared by report rendering and the baseline: path, then
/// line, then code, then message — fully deterministic.
fn finding_key(f: &Finding) -> (String, u32, Code, String) {
    (f.path.clone(), f.line, f.code, f.message.clone())
}

/// The result of auditing a set of files.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Active findings (not waived), sorted.
    pub findings: Vec<Finding>,
    /// Waived findings, sorted — kept for accounting and `--all` output.
    pub waived: Vec<Finding>,
    /// Per-file line counts of every scanned file (for the ratchet).
    pub file_lines: BTreeMap<String, u32>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Merge another file's results in.
    fn absorb(&mut self, mut other: rules::FileAudit) {
        self.findings.append(&mut other.findings);
        self.waived.append(&mut other.waived);
        self.file_lines.insert(other.path, other.lines);
        self.files_scanned += 1;
    }

    /// Canonical ordering, applied once after all files are absorbed.
    fn sort(&mut self) {
        self.findings.sort_by_key(finding_key);
        self.waived.sort_by_key(finding_key);
    }

    /// Per-(code, path) counts of active findings — the baseline currency.
    pub fn counts(&self) -> BTreeMap<(Code, String), u32> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry((f.code, f.path.clone())).or_insert(0) += 1;
        }
        m
    }

    /// Distinct codes with at least one active or waived finding.
    pub fn distinct_codes(&self) -> Vec<Code> {
        let mut v: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| {
                self.findings.iter().any(|f| f.code == *c)
                    || self.waived.iter().any(|f| f.code == *c)
            })
            .collect();
        v.dedup();
        v
    }

    /// Deterministic human-readable text: one line per finding, sorted,
    /// then a summary. `show_waived` appends the waived list.
    pub fn to_text(&self, show_waived: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{f}\n"));
        }
        if show_waived {
            for f in &self.waived {
                out.push_str(&format!("waived {f}\n"));
            }
        }
        let (e, w) = self
            .findings
            .iter()
            .fold((0usize, 0usize), |(e, w), f| match f.severity {
                Severity::Error => (e + 1, w),
                Severity::Warn | Severity::Info => (e, w + 1),
            });
        out.push_str(&format!(
            "audit: {} finding(s) ({e} error(s), {w} warning(s)), {} waived, {} file(s) scanned\n",
            self.findings.len(),
            self.waived.len(),
            self.files_scanned
        ));
        out
    }
}

/// What the rules need to know about the workspace architecture. The
/// default is this repository's documented layout; tests perturb it.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Files larger than this many lines trigger [`Code::A302`].
    pub module_lines_threshold: u32,
    /// Crates whose non-test code may not call `unwrap`/`expect`
    /// ([`Code::A301`]): the engine hot paths.
    pub hot_path_crates: Vec<String>,
    /// Crates forming the documented real-execution boundary: threads,
    /// atomics, locks, and wall clocks are legitimate here (A103/A2xx
    /// exempt).
    pub exec_boundary_crates: Vec<String>,
    /// Path fragments scoping [`Code::A104`] to digest/histogram code.
    pub float_scope: Vec<String>,
    /// Allowed `vine-*` dependencies per crate (the architecture DAG,
    /// mirroring each crate's `[dependencies]`). Key and values are the
    /// short crate names (`core`, not `vine-core`).
    pub layering: BTreeMap<String, Vec<String>>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        let dep = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        let mut layering = BTreeMap::new();
        layering.insert("simcore".into(), dep(&[]));
        layering.insert("dag".into(), dep(&[]));
        layering.insert("data".into(), dep(&[]));
        layering.insert("audit".into(), dep(&[]));
        layering.insert("storage".into(), dep(&["simcore"]));
        layering.insert("net".into(), dep(&["simcore"]));
        layering.insert("store".into(), dep(&["simcore", "storage", "net", "obs"]));
        layering.insert("cluster".into(), dep(&["simcore"]));
        layering.insert("chaos".into(), dep(&["simcore"]));
        layering.insert("lint".into(), dep(&["dag"]));
        layering.insert("obs".into(), dep(&["simcore", "dag"]));
        layering.insert(
            "core".into(),
            dep(&[
                "simcore", "storage", "net", "cluster", "chaos", "dag", "lint", "obs", "data",
            ]),
        );
        layering.insert("analysis".into(), dep(&["data", "dag", "core", "simcore"]));
        layering.insert(
            "exec".into(),
            dep(&["dag", "lint", "obs", "data", "analysis"]),
        );
        layering.insert(
            "serve".into(),
            dep(&[
                "simcore", "storage", "store", "cluster", "dag", "lint", "obs", "analysis", "core",
            ]),
        );
        layering.insert(
            "watch".into(),
            dep(&[
                "simcore", "storage", "dag", "lint", "obs", "data", "analysis", "core", "serve",
            ]),
        );
        layering.insert(
            "bench".into(),
            dep(&[
                "simcore", "storage", "store", "net", "cluster", "chaos", "dag", "lint", "obs",
                "data", "analysis", "core", "serve", "exec", "watch",
            ]),
        );
        AuditConfig {
            module_lines_threshold: 1500,
            hot_path_crates: dep(&["core", "simcore"]),
            exec_boundary_crates: dep(&["exec"]),
            float_scope: dep(&["hist", "digest", "attrib", "metric", "stream", "accum"]),
            layering,
        }
    }
}

/// Audit one source file given its crate and repo-relative path. The
/// entry point fixtures and property tests drive directly.
pub fn audit_source(
    crate_name: &str,
    rel_path: &str,
    source: &str,
    cfg: &AuditConfig,
) -> rules::FileAudit {
    rules::audit_file(crate_name, rel_path, source, cfg)
}

/// Audit a set of in-memory files `(crate, repo-relative path, source)`.
/// Output is independent of the order `files` is supplied in.
pub fn audit_files(files: &[(String, String, String)], cfg: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::default();
    for (krate, path, src) in files {
        report.absorb(rules::audit_file(krate, path, src, cfg));
    }
    report.sort();
    report
}

/// Walk `<root>/crates/*/src/**/*.rs` (sorted), audit every file, and
/// return the combined report. I/O errors on individual files are
/// reported as findings rather than panics, so a permissions hiccup
/// cannot crash the gate silently green.
pub fn audit_workspace(root: &Path, cfg: &AuditConfig) -> std::io::Result<AuditReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files: Vec<(String, String, String)> = Vec::new();
    for cdir in crate_dirs {
        let krate = cdir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src = cdir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut stack = vec![src.clone()];
        let mut paths: Vec<PathBuf> = Vec::new();
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    paths.push(p);
                }
            }
        }
        paths.sort();
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&p)?;
            files.push((krate.clone(), rel, text));
        }
    }
    Ok(audit_files(&files, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_described_and_parses() {
        for c in Code::ALL {
            assert!(!c.describe().is_empty());
            assert_eq!(Code::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Code::parse("A999"), None);
    }

    #[test]
    fn report_counts_group_by_code_and_path() {
        let files = vec![(
            "core".to_string(),
            "crates/core/src/x.rs".to_string(),
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n"
                .to_string(),
        )];
        let r = audit_files(&files, &AuditConfig::default());
        let counts = r.counts();
        assert_eq!(
            counts.get(&(Code::A101, "crates/core/src/x.rs".to_string())),
            Some(&2),
            "two non-use occurrences: the type and the constructor"
        );
    }

    #[test]
    fn default_layering_covers_every_crate_dir() {
        // The table is the documented architecture; a new crate must be
        // added to it deliberately.
        let cfg = AuditConfig::default();
        for k in [
            "simcore", "storage", "store", "net", "cluster", "chaos", "dag", "lint", "obs", "data",
            "analysis", "core", "serve", "exec", "watch", "bench", "audit",
        ] {
            assert!(cfg.layering.contains_key(k), "{k} missing from layering");
        }
    }
}
