//! Property-based tests: the histogram-merge algebra that justifies
//! hierarchical reduction, plus jagged-array and catalog invariants.

use proptest::prelude::*;
use vine_data::{
    decode_event_batch, decode_histogram_set, encode_event_batch, encode_histogram_set, Dataset,
    EventGenerator, Hist1D, HistogramSet, Jagged,
};

fn filled_hist(values: &[f64]) -> Hist1D {
    let mut h = Hist1D::new(16, 0.0, 100.0);
    h.fill_all(values);
    h
}

proptest! {
    /// Histogram merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_commutative(
        xs in proptest::collection::vec(-50.0f64..150.0, 0..100),
        ys in proptest::collection::vec(-50.0f64..150.0, 0..100),
    ) {
        let (a, b) = (filled_hist(&xs), filled_hist(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_associative(
        xs in proptest::collection::vec(-50.0f64..150.0, 0..60),
        ys in proptest::collection::vec(-50.0f64..150.0, 0..60),
        zs in proptest::collection::vec(-50.0f64..150.0, 0..60),
    ) {
        let (a, b, c) = (filled_hist(&xs), filled_hist(&ys), filled_hist(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Floating-point addition is not exactly associative; compare
        // within tolerance.
        for (l, r) in left.counts().iter().zip(right.counts()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
        prop_assert!((left.total() - right.total()).abs() < 1e-9);
    }

    /// The empty histogram is the merge identity.
    #[test]
    fn merge_identity(xs in proptest::collection::vec(-50.0f64..150.0, 0..100)) {
        let a = filled_hist(&xs);
        let mut merged = a.clone();
        merged.merge(&Hist1D::new(16, 0.0, 100.0));
        prop_assert_eq!(merged, a);
    }

    /// Tree-shaped merging of any partition equals one flat merge — the
    /// exact property the Fig 11 rewrite relies on.
    #[test]
    fn hierarchical_equals_flat(
        batches in proptest::collection::vec(
            proptest::collection::vec(-50.0f64..150.0, 0..40), 1..16),
        arity in 2usize..5,
    ) {
        let parts: Vec<Hist1D> = batches.iter().map(|b| filled_hist(b)).collect();

        // Flat, left-to-right.
        let mut flat = Hist1D::new(16, 0.0, 100.0);
        for p in &parts {
            flat.merge(p);
        }

        // Bounded-arity tree.
        let mut frontier = parts;
        while frontier.len() > 1 {
            frontier = frontier
                .chunks(arity)
                .map(|chunk| {
                    let mut acc = chunk[0].clone();
                    for p in &chunk[1..] {
                        acc.merge(p);
                    }
                    acc
                })
                .collect();
        }
        for (l, r) in flat.counts().iter().zip(frontier[0].counts()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
        prop_assert!((flat.total() - frontier[0].total()).abs() < 1e-9);
    }

    /// Total filled weight is conserved: bins + underflow + overflow.
    #[test]
    fn fill_conserves_weight(xs in proptest::collection::vec(-1e4f64..1e4, 0..300)) {
        let h = filled_hist(&xs);
        let sum: f64 = h.counts().iter().sum::<f64>() + h.underflow() + h.overflow();
        prop_assert!((sum - xs.len() as f64).abs() < 1e-9);
    }

    /// HistogramSet merge accumulates event counts and histogram unions.
    #[test]
    fn set_merge_accumulates(
        n_sets in 1usize..8,
        fills in proptest::collection::vec(0.0f64..100.0, 0..50),
    ) {
        let mut total = HistogramSet::new();
        for i in 0..n_sets {
            let mut s = HistogramSet::new();
            s.set_h1("x", filled_hist(&fills));
            s.events_processed = i as u64;
            total.merge(&s);
        }
        prop_assert_eq!(total.events_processed, (0..n_sets as u64).sum::<u64>());
        let expect = fills.len() as f64 * n_sets as f64;
        prop_assert!((total.h1("x").unwrap().total() - expect).abs() < 1e-9);
    }

    /// Jagged arrays round-trip through parts and concat preserves events.
    #[test]
    fn jagged_round_trip(lists in proptest::collection::vec(
        proptest::collection::vec(-10.0f64..10.0, 0..6), 0..30)) {
        let j = Jagged::from_lists(lists.iter().cloned());
        prop_assert_eq!(j.len(), lists.len());
        for (i, l) in lists.iter().enumerate() {
            prop_assert_eq!(j.event(i), l.as_slice());
        }
        let total: usize = lists.iter().map(|l| l.len()).sum();
        prop_assert_eq!(j.total_items(), total);
    }

    /// Dataset synthesis conserves bytes/events for any parameters.
    #[test]
    fn dataset_conservation(
        total_mb in 1u64..200,
        bytes_per_event in 200u64..4000,
        events_per_file in 100u64..5000,
        chunks in 1u32..10,
    ) {
        let total = total_mb * 1_000_000;
        let ds = Dataset::synthesize("p", total, bytes_per_event, events_per_file, chunks);
        prop_assert_eq!(ds.total_events(), (total / bytes_per_event).max(1));
        prop_assert_eq!(ds.total_bytes(), ds.total_events() * bytes_per_event);
        let chunk_events: u64 = ds.chunks().map(|c| c.n_events).sum();
        prop_assert_eq!(chunk_events, ds.total_events());
        // No file exceeds the requested shape.
        for f in &ds.files {
            prop_assert!(f.n_events <= events_per_file);
            prop_assert!(f.chunks.len() <= chunks as usize);
        }
    }

    /// Event generation is a pure function of (dataset, file, chunk).
    #[test]
    fn generation_pure(file in 0u32..50, chunk in 0u32..10, n in 1usize..100) {
        let g = EventGenerator::default();
        let a = g.generate("ds", file, chunk, n);
        let b = g.generate("ds", file, chunk, n);
        prop_assert_eq!(a.scalar("MET_pt"), b.scalar("MET_pt"));
        prop_assert_eq!(a.jagged("Jet_btag"), b.jagged("Jet_btag"));
        prop_assert_eq!(a.len(), n);
    }

    /// The binary codec round-trips arbitrary histogram sets exactly.
    #[test]
    fn codec_histogram_round_trip(
        fills in proptest::collection::vec((-1e3f64..1e3, 0.01f64..100.0), 0..200),
        bins in 1usize..64,
        events in 0u64..1_000_000,
    ) {
        let mut h = Hist1D::new(bins, -500.0, 500.0);
        for &(x, w) in &fills {
            h.fill_weighted(x, w);
        }
        let mut set = HistogramSet::new();
        set.set_h1("x", h);
        set.events_processed = events;
        let back = decode_histogram_set(&encode_histogram_set(&set)).unwrap();
        prop_assert_eq!(set, back);
    }

    /// The codec round-trips any generated event batch exactly, and
    /// never panics on truncated input.
    #[test]
    fn codec_batch_round_trip(file in 0u32..20, n in 0usize..150, cut in 0usize..64) {
        let batch = EventGenerator::default().generate("prop", file, 0, n);
        let bytes = encode_event_batch(&batch);
        let back = decode_event_batch(&bytes).unwrap();
        prop_assert_eq!(batch.len(), back.len());
        prop_assert_eq!(batch.scalar("MET_pt"), back.scalar("MET_pt"));
        prop_assert_eq!(batch.jagged("Jet_pt"), back.jagged("Jet_pt"));
        // Truncations decode to an error, never a panic.
        let cut = cut.min(bytes.len());
        let _ = decode_event_batch(&bytes[..cut]);
    }
}
