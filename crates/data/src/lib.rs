#![deny(unsafe_code)]

//! # vine-data — synthetic HEP data substrate
//!
//! Stands in for the CMS ROOT datasets the paper consumes (which are
//! proprietary). Provides:
//!
//! * [`jagged`] — awkward-array-style jagged arrays (per-event variable-
//!   length lists of jets/photons) over flat storage;
//! * [`events`] — [`events::EventBatch`], a columnar batch of collision
//!   events with scalar and jagged columns;
//! * [`gen`] — deterministic, physics-shaped event generation (jet pₜ
//!   spectra, b-tag scores, photon kinematics, MET);
//! * [`rootfile`] — a ROOT-like dataset catalog: datasets → files →
//!   column chunks, with sizes, so the simulator can cost I/O without
//!   materializing events, while the real executor materializes the same
//!   chunks deterministically on demand;
//! * [`hist`] — 1-D/2-D histograms whose merge is commutative and
//!   associative — the property that legitimizes hierarchical reduction
//!   (Fig 11).

pub mod codec;
pub mod events;
pub mod gen;
pub mod hist;
pub mod jagged;
pub mod log;
pub mod rootfile;
pub mod stream;

pub use codec::{
    decode_event_batch, decode_histogram_set, encode_event_batch, encode_histogram_set, CodecError,
};
pub use events::EventBatch;
pub use gen::EventGenerator;
pub use hist::{Hist1D, Hist2D, HistogramSet};
pub use jagged::Jagged;
pub use log::{DatasetLog, GrowthEvent, GrowthKind};
pub use rootfile::{Chunk, Dataset, RootFile};
pub use stream::{fnv1a64, partition_delta, STREAM_HIST};
