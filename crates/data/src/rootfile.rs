//! ROOT-like dataset catalog.
//!
//! HEP data arrives as datasets of ROOT files holding columnar event data;
//! Coffea partitions each file into chunks (`uproot_options={"chunks_per_
//! file": 5}` in the paper's Fig 4 example) and creates one processing task
//! per chunk. [`Dataset::synthesize`] builds such a catalog from a target
//! total size — file layout, event counts, and byte sizes — without
//! materializing any events. The simulator costs I/O from the catalog
//! alone; the real executor calls [`Dataset::materialize`] to generate the
//! actual columns deterministically.

use crate::events::EventBatch;
use crate::gen::EventGenerator;

/// One processing unit: a contiguous range of events within a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Which file of the dataset.
    pub file_index: u32,
    /// Which chunk within the file.
    pub chunk_index: u32,
    /// Events in this chunk.
    pub n_events: u64,
    /// Bytes this chunk occupies on storage.
    pub bytes: u64,
}

/// One ROOT file: a sequence of chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootFile {
    /// Index within the dataset.
    pub index: u32,
    /// Total events.
    pub n_events: u64,
    /// Total bytes.
    pub bytes: u64,
    /// The file's chunks, in order.
    pub chunks: Vec<Chunk>,
}

/// A named dataset: a set of files plus the generator that defines its
/// (synthetic) contents.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. `"SingleMu"`).
    pub name: String,
    /// Files, indexed by `RootFile::index`.
    pub files: Vec<RootFile>,
    /// Average stored bytes per event.
    pub bytes_per_event: u64,
    /// Event-content generator.
    pub generator: EventGenerator,
}

impl Dataset {
    /// Build a catalog totalling (approximately) `total_bytes`, split into
    /// files of `events_per_file` events, each cut into `chunks_per_file`
    /// chunks.
    ///
    /// # Panics
    /// If any parameter is zero.
    pub fn synthesize(
        name: impl Into<String>,
        total_bytes: u64,
        bytes_per_event: u64,
        events_per_file: u64,
        chunks_per_file: u32,
    ) -> Self {
        assert!(total_bytes > 0 && bytes_per_event > 0);
        assert!(events_per_file > 0 && chunks_per_file > 0);
        let total_events = (total_bytes / bytes_per_event).max(1);
        let n_files = total_events.div_ceil(events_per_file).max(1);
        let mut files = Vec::with_capacity(n_files as usize);
        let mut remaining = total_events;
        for fi in 0..n_files {
            let ev = remaining.min(events_per_file);
            remaining -= ev;
            let mut chunks = Vec::with_capacity(chunks_per_file as usize);
            let base = ev / chunks_per_file as u64;
            let extra = ev % chunks_per_file as u64;
            for ci in 0..chunks_per_file {
                let n = base + if (ci as u64) < extra { 1 } else { 0 };
                if n == 0 {
                    continue;
                }
                chunks.push(Chunk {
                    file_index: fi as u32,
                    chunk_index: ci,
                    n_events: n,
                    bytes: n * bytes_per_event,
                });
            }
            files.push(RootFile {
                index: fi as u32,
                n_events: ev,
                bytes: ev * bytes_per_event,
                chunks,
            });
        }
        Dataset {
            name: name.into(),
            files,
            bytes_per_event,
            generator: EventGenerator::default(),
        }
    }

    /// Total events across all files.
    pub fn total_events(&self) -> u64 {
        self.files.iter().map(|f| f.n_events).sum()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// All chunks of all files, in `(file, chunk)` order.
    pub fn chunks(&self) -> impl Iterator<Item = &Chunk> {
        self.files.iter().flat_map(|f| f.chunks.iter())
    }

    /// Total number of chunks (== processing tasks Coffea would create).
    pub fn chunk_count(&self) -> usize {
        self.files.iter().map(|f| f.chunks.len()).sum()
    }

    /// Deterministically generate the events of one chunk.
    pub fn materialize(&self, chunk: &Chunk) -> EventBatch {
        self.generator.generate(
            &self.name,
            chunk.file_index,
            chunk.chunk_index,
            chunk.n_events as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_simcore::units::{GB, KB, MB};

    #[test]
    fn synthesize_partitions_bytes_and_events() {
        let ds = Dataset::synthesize("t", 10 * MB, KB, 2000, 5);
        assert_eq!(ds.total_events(), 10_000);
        assert_eq!(ds.total_bytes(), 10 * MB);
        assert_eq!(ds.files.len(), 5);
        assert_eq!(ds.chunk_count(), 25);
    }

    #[test]
    fn ragged_tail_file() {
        // 2500 events into files of 1000 -> 3 files (1000, 1000, 500).
        let ds = Dataset::synthesize("t", 2500 * KB, KB, 1000, 2);
        assert_eq!(ds.files.len(), 3);
        assert_eq!(ds.files[2].n_events, 500);
        assert_eq!(ds.total_events(), 2500);
    }

    #[test]
    fn chunk_events_sum_to_file_events() {
        let ds = Dataset::synthesize("t", 7777 * KB, KB, 1003, 7);
        for f in &ds.files {
            let sum: u64 = f.chunks.iter().map(|c| c.n_events).sum();
            assert_eq!(sum, f.n_events);
        }
    }

    #[test]
    fn materialize_respects_chunk_size_and_determinism() {
        let ds = Dataset::synthesize("t", MB, KB, 500, 2);
        let c = ds.files[0].chunks[1];
        let a = ds.materialize(&c);
        let b = ds.materialize(&c);
        assert_eq!(a.len(), c.n_events as usize);
        assert_eq!(a.scalar("MET_pt"), b.scalar("MET_pt"));
    }

    #[test]
    fn paper_scale_catalog_is_cheap_to_build() {
        // DV3-Large: 1.2 TB. Catalog only — no events materialized.
        let ds = Dataset::synthesize("dv3", 1_200 * GB, 2 * KB, 350_000, 5);
        assert!(ds.chunk_count() > 5000);
        assert_eq!(ds.total_bytes(), 1_200 * GB);
    }

    #[test]
    fn distinct_chunks_have_distinct_data() {
        let ds = Dataset::synthesize("t", MB, KB, 500, 2);
        let a = ds.materialize(&ds.files[0].chunks[0]);
        let b = ds.materialize(&ds.files[1].chunks[0]);
        assert_ne!(a.scalar("MET_pt"), b.scalar("MET_pt"));
    }
}
