//! Deterministic per-partition histogram deltas for streaming runs.
//!
//! A streaming engine run pushes one [`HistogramSet`] delta per completed
//! partition. The delta is synthesized from the partition's *identity*
//! (label + event count) alone — no engine RNG stream is touched, so a
//! run with streaming enabled schedules byte-identically to one without.
//!
//! Every filled value and weight is an integer. Integer-valued f64
//! accumulation below 2^53 is exact, so folding deltas is genuinely
//! commutative and associative *at the bit level*: any fold order of the
//! same deltas yields a bit-identical [`HistogramSet`]. That is the
//! property that lets an incremental accumulator promise its estimate at
//! 100% equals the batch merge exactly (asserted by proptests in
//! `vine-analysis`).

use crate::hist::{Hist1D, HistogramSet};

/// Name of the observable every partition delta fills.
pub const STREAM_HIST: &str = "mass";
/// Binning of [`STREAM_HIST`] (shared by every delta so merges line up).
pub const STREAM_BINS: usize = 60;
/// Lower edge of [`STREAM_HIST`].
pub const STREAM_LO: f64 = 0.0;
/// Upper edge of [`STREAM_HIST`].
pub const STREAM_HI: f64 = 300.0;
/// At most this many distinct fills per delta; larger partitions widen
/// the per-fill weight instead (keeps delta synthesis O(1)-ish).
const MAX_FILLS: u64 = 1024;

/// SplitMix64 step — the same tiny generator the vendored proptest stub
/// uses; good enough to shape a histogram, independent of `rand`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes` — the digest recorded for partial results.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The histogram delta contributed by one partition.
///
/// Deterministic in `(label, events)`: the label seeds a private
/// SplitMix64 stream, `events` sets the statistical weight. The shape is
/// a crude peak-over-background (a third of the weight near 125, the
/// rest falling background) — enough structure that partial estimates
/// visibly converge toward the full-run distribution.
pub fn partition_delta(label: &str, events: u64) -> HistogramSet {
    let mut h = Hist1D::new(STREAM_BINS, STREAM_LO, STREAM_HI);
    if events > 0 {
        let mut state = fnv1a64(label.as_bytes());
        let fills = events.min(MAX_FILLS);
        let base_w = events / fills;
        let mut remainder = events - base_w * fills;
        for _ in 0..fills {
            let r = splitmix(&mut state);
            // Integer-valued observable in [0, STREAM_HI).
            let x = if r.is_multiple_of(3) {
                115 + (splitmix(&mut state) % 21) // peak: 115..=135
            } else {
                (splitmix(&mut state) % (STREAM_HI as u64 * 2)).min(STREAM_HI as u64 - 1)
            };
            let mut w = base_w;
            if remainder > 0 {
                w += 1;
                remainder -= 1;
            }
            h.fill_weighted(x as f64, w as f64);
        }
    }
    let mut set = HistogramSet::new();
    set.set_h1(STREAM_HIST, h);
    set.events_processed = events;
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_deterministic_and_weight_preserving() {
        let a = partition_delta("ds0.chunk3", 5_000);
        let b = partition_delta("ds0.chunk3", 5_000);
        assert_eq!(
            a.h1(STREAM_HIST).unwrap().counts(),
            b.h1(STREAM_HIST).unwrap().counts()
        );
        assert_eq!(a.events_processed, 5_000);
        // All weight lands somewhere, and the histogram range covers the
        // synthesized values so nothing overflows.
        let h = a.h1(STREAM_HIST).unwrap();
        assert_eq!(h.total() as u64, 5_000);
    }

    #[test]
    fn different_labels_differ() {
        let a = partition_delta("ds0.chunk0", 1_000);
        let b = partition_delta("ds0.chunk1", 1_000);
        assert_ne!(
            a.h1(STREAM_HIST).unwrap().counts(),
            b.h1(STREAM_HIST).unwrap().counts()
        );
    }

    #[test]
    fn values_are_integers() {
        let d = partition_delta("x", 100_000);
        let h = d.h1(STREAM_HIST).unwrap();
        for &c in h.counts() {
            assert_eq!(c, c.trunc(), "bin counts must be integer-valued");
        }
        assert_eq!(h.sum_wx(), h.sum_wx().trunc());
    }

    #[test]
    fn zero_events_is_an_empty_delta() {
        let d = partition_delta("empty", 0);
        assert_eq!(d.h1(STREAM_HIST).unwrap().total(), 0.0);
        assert_eq!(d.events_processed, 0);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
