//! Binary serialization of histogram sets and event batches.
//!
//! The paper's stack serializes task arguments and partial results to move
//! them between manager and workers (§III-C). This hand-rolled
//! little-endian codec gives the runtime *actual* byte sizes (used by
//! `vine-exec` to report transfer volumes) and an on-disk format for
//! results — with no external dependencies.
//!
//! Format: a 4-byte magic, a version byte, then length-prefixed sections.
//! Round-tripping is exact (bit-level for all `f64` payloads).

use std::collections::BTreeMap;

use crate::events::EventBatch;
use crate::hist::{Hist1D, Hist2D, HistogramSet};
use crate::jagged::Jagged;

const MAGIC: &[u8; 4] = b"VINE";
const VERSION: u8 = 1;

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the expected magic/version.
    BadHeader,
    /// The buffer ended before a declared section did.
    Truncated,
    /// A length or count field is inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad magic or version"),
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(tag);
        Writer { buf }
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], tag: u8) -> Result<Self, CodecError> {
        if buf.len() < 6 || &buf[..4] != MAGIC || buf[4] != VERSION || buf[5] != tag {
            return Err(CodecError::BadHeader);
        }
        Ok(Reader { buf, pos: 6 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn len_checked(&mut self, elem_size: usize, what: &'static str) -> Result<usize, CodecError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(elem_size) > self.buf.len() - self.pos {
            return Err(CodecError::Corrupt(what));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len_checked(1, "string length")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("utf8"))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len_checked(8, "f64 vector length")?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.len_checked(4, "u32 vector length")?;
        (0..n)
            .map(|_| {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("4 bytes"),
                ))
            })
            .collect()
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Corrupt("trailing bytes"))
        }
    }
}

// Tags distinguish top-level payload kinds.
const TAG_HISTSET: u8 = 1;
const TAG_BATCH: u8 = 2;

fn write_h1(w: &mut Writer, h: &Hist1D) {
    let (lo, hi) = h.bounds();
    w.f64(lo);
    w.f64(hi);
    w.f64s(h.counts());
    w.f64(h.underflow());
    w.f64(h.overflow());
    w.f64(h.total());
    w.f64(h.sum_wx());
}

fn read_h1(r: &mut Reader) -> Result<Hist1D, CodecError> {
    let lo = r.f64()?;
    let hi = r.f64()?;
    let counts = r.f64s()?;
    if counts.is_empty() || hi <= lo {
        return Err(CodecError::Corrupt("hist axis"));
    }
    let underflow = r.f64()?;
    let overflow = r.f64()?;
    let sum_w = r.f64()?;
    let sum_wx = r.f64()?;
    Ok(Hist1D::from_raw_parts(
        lo, hi, counts, underflow, overflow, sum_w, sum_wx,
    ))
}

/// Encode a histogram set.
pub fn encode_histogram_set(set: &HistogramSet) -> Vec<u8> {
    let mut w = Writer::new(TAG_HISTSET);
    w.u64(set.events_processed);
    let h1: Vec<(&str, &Hist1D)> = set
        .h1_names()
        .map(|n| (n, set.h1(n).expect("listed")))
        .collect();
    w.u64(h1.len() as u64);
    for (name, h) in h1 {
        w.str(name);
        write_h1(&mut w, h);
    }
    let h2names: Vec<String> = set.h2_names().map(|s| s.to_string()).collect();
    w.u64(h2names.len() as u64);
    for name in &h2names {
        let h = set.h2(name).expect("listed");
        w.str(name);
        let p = h.raw_parts();
        w.u64(p.x_bins as u64);
        w.u64(p.y_bins as u64);
        w.f64(p.x_lo);
        w.f64(p.x_hi);
        w.f64(p.y_lo);
        w.f64(p.y_hi);
        w.f64s(p.counts);
        w.f64(p.outside);
        w.f64(p.sum_w);
    }
    w.buf
}

/// Decode a histogram set.
pub fn decode_histogram_set(buf: &[u8]) -> Result<HistogramSet, CodecError> {
    let mut r = Reader::new(buf, TAG_HISTSET)?;
    let mut set = HistogramSet::new();
    set.events_processed = r.u64()?;
    let n1 = r.len_checked(1, "h1 count")?;
    for _ in 0..n1 {
        let name = r.str()?;
        set.set_h1(name, read_h1(&mut r)?);
    }
    let n2 = r.len_checked(1, "h2 count")?;
    for _ in 0..n2 {
        let name = r.str()?;
        let x_bins = r.u64()? as usize;
        let y_bins = r.u64()? as usize;
        let x_lo = r.f64()?;
        let x_hi = r.f64()?;
        let y_lo = r.f64()?;
        let y_hi = r.f64()?;
        let counts = r.f64s()?;
        if counts.len() != x_bins * y_bins || x_bins == 0 || y_bins == 0 {
            return Err(CodecError::Corrupt("hist2d shape"));
        }
        let outside = r.f64()?;
        let sum_w = r.f64()?;
        set.set_h2(
            name,
            Hist2D::from_raw_parts(
                x_bins, y_bins, x_lo, x_hi, y_lo, y_hi, counts, outside, sum_w,
            ),
        );
    }
    r.finish()?;
    Ok(set)
}

/// Encode an event batch.
pub fn encode_event_batch(batch: &EventBatch) -> Vec<u8> {
    let mut w = Writer::new(TAG_BATCH);
    w.u64(batch.len() as u64);
    let scalars: Vec<&str> = batch.scalar_names().collect();
    w.u64(scalars.len() as u64);
    for name in scalars {
        w.str(name);
        w.f64s(batch.scalar(name).expect("listed"));
    }
    let jaggeds: Vec<&str> = batch.jagged_names().collect();
    w.u64(jaggeds.len() as u64);
    for name in jaggeds {
        let j = batch.jagged(name).expect("listed");
        w.str(name);
        w.u32s(&j.counts());
        w.f64s(j.values());
    }
    w.buf
}

/// Decode an event batch.
pub fn decode_event_batch(buf: &[u8]) -> Result<EventBatch, CodecError> {
    let mut r = Reader::new(buf, TAG_BATCH)?;
    let n_events = r.u64()? as usize;
    let mut batch = EventBatch::new(n_events);
    let ns = r.len_checked(1, "scalar count")?;
    let mut scalars: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for _ in 0..ns {
        let name = r.str()?;
        let vs = r.f64s()?;
        if vs.len() != n_events {
            return Err(CodecError::Corrupt("scalar length"));
        }
        scalars.insert(name, vs);
    }
    for (name, vs) in scalars {
        batch.set_scalar(name, vs);
    }
    let nj = r.len_checked(1, "jagged count")?;
    for _ in 0..nj {
        let name = r.str()?;
        let counts = r.u32s()?;
        let values = r.f64s()?;
        if counts.len() != n_events {
            return Err(CodecError::Corrupt("jagged length"));
        }
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total != values.len() as u64 {
            return Err(CodecError::Corrupt("jagged totals"));
        }
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc = acc
                .checked_add(c)
                .ok_or(CodecError::Corrupt("offset overflow"))?;
            offsets.push(acc);
        }
        batch.set_jagged(name, Jagged::from_parts(offsets, values));
    }
    r.finish()?;
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::EventGenerator;

    fn sample_set() -> HistogramSet {
        let mut h = Hist1D::new(10, 0.0, 100.0);
        h.fill_weighted(5.0, 2.0);
        h.fill(150.0);
        h.fill(-3.0);
        let mut h2 = Hist2D::new(3, 0.0, 3.0, 2, 0.0, 2.0);
        h2.fill(1.5, 0.5);
        let mut set = HistogramSet::new();
        set.set_h1("mass", h);
        set.set_h2("corr", h2);
        set.events_processed = 42;
        set
    }

    #[test]
    fn histogram_set_round_trips_exactly() {
        let set = sample_set();
        let bytes = encode_histogram_set(&set);
        let back = decode_histogram_set(&bytes).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn event_batch_round_trips_exactly() {
        let batch = EventGenerator::default().generate("codec", 1, 2, 200);
        let bytes = encode_event_batch(&batch);
        let back = decode_event_batch(&bytes).unwrap();
        assert_eq!(batch.len(), back.len());
        {
            let name = "MET_pt";
            assert_eq!(batch.scalar(name), back.scalar(name));
        }
        for name in ["Jet_pt", "Jet_btag", "Photon_phi"] {
            assert_eq!(batch.jagged(name), back.jagged(name));
        }
    }

    #[test]
    fn empty_set_round_trips() {
        let set = HistogramSet::new();
        let back = decode_histogram_set(&encode_histogram_set(&set)).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode_histogram_set(&sample_set());
        bytes[0] = b'X';
        assert_eq!(decode_histogram_set(&bytes), Err(CodecError::BadHeader));
    }

    #[test]
    fn wrong_tag_rejected() {
        let bytes = encode_histogram_set(&sample_set());
        assert_eq!(
            decode_event_batch(&bytes).unwrap_err(),
            CodecError::BadHeader
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_histogram_set(&sample_set());
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_histogram_set(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_histogram_set(&sample_set());
        bytes.push(0);
        assert_eq!(
            decode_histogram_set(&bytes),
            Err(CodecError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // A claimed vector length far beyond the buffer must error, not OOM.
        let mut w = Writer::new(TAG_HISTSET);
        w.u64(0); // events
        w.u64(u64::MAX); // absurd h1 count
        assert!(decode_histogram_set(&w.buf).is_err());
    }

    #[test]
    fn encoded_size_tracks_contents() {
        let small = encode_histogram_set(&HistogramSet::new()).len();
        let big = encode_histogram_set(&sample_set()).len();
        assert!(big > small + 100);
    }
}
