//! Columnar event batches (the NanoEvents role).

use std::collections::BTreeMap;

use crate::jagged::Jagged;

/// A batch of collision events in columnar form: scalar columns (one value
/// per event, e.g. `MET_pt`) and jagged columns (a list per event, e.g.
/// `Jet_pt`).
#[derive(Clone, Debug, Default)]
pub struct EventBatch {
    n_events: usize,
    scalars: BTreeMap<String, Vec<f64>>,
    jagged: BTreeMap<String, Jagged>,
}

impl EventBatch {
    /// An empty batch of `n_events` events with no columns yet.
    pub fn new(n_events: usize) -> Self {
        EventBatch {
            n_events,
            scalars: BTreeMap::new(),
            jagged: BTreeMap::new(),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.n_events
    }

    /// True if the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Attach a scalar column.
    ///
    /// # Panics
    /// If the column length differs from the batch length.
    pub fn set_scalar(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.n_events, "scalar column length mismatch");
        self.scalars.insert(name.into(), values);
    }

    /// Attach a jagged column.
    ///
    /// # Panics
    /// If the column length differs from the batch length.
    pub fn set_jagged(&mut self, name: impl Into<String>, values: Jagged) {
        assert_eq!(values.len(), self.n_events, "jagged column length mismatch");
        self.jagged.insert(name.into(), values);
    }

    /// Borrow a scalar column.
    pub fn scalar(&self, name: &str) -> Option<&[f64]> {
        self.scalars.get(name).map(|v| v.as_slice())
    }

    /// Borrow a jagged column.
    pub fn jagged(&self, name: &str) -> Option<&Jagged> {
        self.jagged.get(name)
    }

    /// Names of all scalar columns, sorted.
    pub fn scalar_names(&self) -> impl Iterator<Item = &str> {
        self.scalars.keys().map(|s| s.as_str())
    }

    /// Names of all jagged columns, sorted.
    pub fn jagged_names(&self) -> impl Iterator<Item = &str> {
        self.jagged.keys().map(|s| s.as_str())
    }

    /// Approximate in-memory footprint in bytes (column payloads only).
    pub fn byte_size(&self) -> u64 {
        let s: usize = self.scalars.values().map(|v| v.len() * 8).sum();
        let j: usize = self
            .jagged
            .values()
            .map(|v| v.total_items() * 8 + (v.len() + 1) * 4)
            .sum();
        (s + j) as u64
    }

    /// Concatenate another batch's events after this one. Both batches
    /// must have identical column sets.
    ///
    /// # Panics
    /// If the column sets differ.
    pub fn concat(&mut self, other: &EventBatch) {
        assert!(
            self.scalars.keys().eq(other.scalars.keys())
                && self.jagged.keys().eq(other.jagged.keys()),
            "cannot concat batches with different schemas"
        );
        for (name, col) in &mut self.scalars {
            col.extend_from_slice(&other.scalars[name]);
        }
        for (name, col) in &mut self.jagged {
            col.extend_from(&other.jagged[name]);
        }
        self.n_events += other.n_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> EventBatch {
        let mut b = EventBatch::new(3);
        b.set_scalar("MET_pt", vec![10.0, 20.0, 30.0]);
        b.set_jagged(
            "Jet_pt",
            Jagged::from_lists(vec![vec![50.0, 40.0], vec![], vec![70.0]]),
        );
        b
    }

    #[test]
    fn columns_round_trip() {
        let b = batch();
        assert_eq!(b.len(), 3);
        assert_eq!(b.scalar("MET_pt").unwrap(), &[10.0, 20.0, 30.0]);
        assert_eq!(b.jagged("Jet_pt").unwrap().event(0), &[50.0, 40.0]);
        assert!(b.scalar("nope").is_none());
    }

    #[test]
    fn names_are_sorted() {
        let mut b = EventBatch::new(1);
        b.set_scalar("z", vec![0.0]);
        b.set_scalar("a", vec![0.0]);
        let names: Vec<_> = b.scalar_names().collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_scalar_panics() {
        let mut b = EventBatch::new(2);
        b.set_scalar("x", vec![1.0]);
    }

    #[test]
    fn byte_size_counts_payloads() {
        let b = batch();
        // MET: 3*8 = 24; Jet_pt: 3 items * 8 + 4 offsets * 4 = 40.
        assert_eq!(b.byte_size(), 64);
    }

    #[test]
    fn concat_appends_events() {
        let mut a = batch();
        let b = batch();
        a.concat(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.scalar("MET_pt").unwrap().len(), 6);
        assert_eq!(a.jagged("Jet_pt").unwrap().event(5), &[70.0]);
    }

    #[test]
    #[should_panic(expected = "different schemas")]
    fn concat_rejects_schema_mismatch() {
        let mut a = batch();
        let b = EventBatch::new(0);
        a.concat(&b);
    }
}
