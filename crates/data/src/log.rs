//! Append-only dataset growth: an epoch-stamped event log.
//!
//! Real HEP datasets are not static — new runs land on tape for months
//! while the analysis keeps iterating. [`DatasetLog`] models that growth
//! as an append-only sequence of [`GrowthEvent`]s (partition appends and
//! analysis spec edits), grouped into **epochs** by explicit
//! [`commit`](DatasetLog::commit) calls. Each event carries a content
//! hash derived from the log seed and the event's identity, so two logs
//! built from the same seed and the same staged sequence are equal
//! event-for-event — and any consumer keyed on those hashes (graph
//! templates, reactive schedulers) is replay-deterministic across the
//! whole growth timeline.
//!
//! Every commit also records a cumulative **epoch digest** (FNV-1a over
//! the canonical text encoding of the log prefix), the identity
//! `vine-watch` compares across replays: same seed + same event log ⇒
//! bit-identical per-epoch digests.

use crate::stream::fnv1a64;

/// What one growth event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthKind {
    /// A new partition (input chunk) of `bytes` appended to a dataset.
    AppendPartition {
        /// Size of the appended chunk.
        bytes: u64,
    },
    /// The analyst edited the final selection: reduction generation bump.
    /// Applies to the whole analysis, not a single dataset.
    EditSpec {
        /// The generation this edit moves the reduction stage to.
        generation: u32,
    },
}

/// One committed, epoch-stamped growth event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrowthEvent {
    /// Global position in the log (ingest order, 0-based).
    pub index: u64,
    /// The epoch this event was committed under (1-based; epoch 0 is the
    /// pristine pre-growth state).
    pub epoch: u64,
    /// The dataset the event touches (`0` for analysis-wide spec edits).
    pub dataset: usize,
    /// What happened.
    pub kind: GrowthKind,
    /// Content hash of the event: FNV-1a over the log seed and the
    /// event's canonical encoding. Stable across replays; unique per
    /// position in a given log.
    pub content_hash: u64,
}

impl GrowthEvent {
    /// Canonical one-line text encoding (what the epoch digest hashes).
    fn to_line(self) -> String {
        match self.kind {
            GrowthKind::AppendPartition { bytes } => format!(
                "{} {} {} append {} {:016x}\n",
                self.index, self.epoch, self.dataset, bytes, self.content_hash
            ),
            GrowthKind::EditSpec { generation } => format!(
                "{} {} {} edit {} {:016x}\n",
                self.index, self.epoch, self.dataset, generation, self.content_hash
            ),
        }
    }
}

/// The append-only growth log. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct DatasetLog {
    seed: u64,
    epoch: u64,
    events: Vec<GrowthEvent>,
    staged: Vec<(usize, GrowthKind)>,
    /// `digests[e]` is the cumulative digest at epoch `e`.
    digests: Vec<u64>,
}

impl DatasetLog {
    /// An empty log at epoch 0. The seed flavors every content hash, so
    /// distinct campaigns never collide even with identical shapes.
    pub fn new(seed: u64) -> Self {
        let digest0 = fnv1a64(format!("dataset-log {seed}\n").as_bytes());
        DatasetLog {
            seed,
            epoch: 0,
            events: Vec::new(),
            staged: Vec::new(),
            digests: vec![digest0],
        }
    }

    /// Stage a partition append for `dataset`; takes effect (gets an
    /// epoch stamp and a content hash) at the next [`commit`](Self::commit).
    pub fn append_partition(&mut self, dataset: usize, bytes: u64) {
        self.staged
            .push((dataset, GrowthKind::AppendPartition { bytes }));
    }

    /// Stage a spec edit: the reduction stage moves to the next
    /// generation at the next commit.
    pub fn edit_spec(&mut self) {
        let next_gen = self.generation_at(u64::MAX)
            + self
                .staged
                .iter()
                .filter(|(_, k)| matches!(k, GrowthKind::EditSpec { .. }))
                .count() as u32
            + 1;
        self.staged.push((
            0,
            GrowthKind::EditSpec {
                generation: next_gen,
            },
        ));
    }

    /// Seal the staged events into a new epoch and return it. Committing
    /// with nothing staged is meaningful: it records a *quiet* epoch
    /// (debounced triggers count those).
    pub fn commit(&mut self) -> u64 {
        self.epoch += 1;
        for (dataset, kind) in std::mem::take(&mut self.staged) {
            let index = self.events.len() as u64;
            let ident = match kind {
                GrowthKind::AppendPartition { bytes } => {
                    format!("{} {} {} append {}", self.seed, self.epoch, index, bytes)
                }
                GrowthKind::EditSpec { generation } => {
                    format!("{} {} {} edit {}", self.seed, self.epoch, index, generation)
                }
            };
            self.events.push(GrowthEvent {
                index,
                epoch: self.epoch,
                dataset,
                kind,
                content_hash: fnv1a64(ident.as_bytes()),
            });
        }
        let mut text = format!("dataset-log {} epoch {}\n", self.seed, self.epoch);
        for e in &self.events {
            text.push_str(&e.to_line());
        }
        self.digests.push(fnv1a64(text.as_bytes()));
        self.epoch
    }

    /// The current (last committed) epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The log seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every committed event, in log order.
    pub fn events(&self) -> &[GrowthEvent] {
        &self.events
    }

    /// Events committed under exactly `epoch`.
    pub fn events_in(&self, epoch: u64) -> impl Iterator<Item = &GrowthEvent> {
        self.events.iter().filter(move |e| e.epoch == epoch)
    }

    /// Partition appends for `dataset` committed at or before `epoch`,
    /// in log order.
    pub fn appends_for(&self, dataset: usize, epoch: u64) -> Vec<GrowthEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.dataset == dataset
                    && e.epoch <= epoch
                    && matches!(e.kind, GrowthKind::AppendPartition { .. })
            })
            .copied()
            .collect()
    }

    /// The reduction generation in force at `epoch`: the highest
    /// generation of any spec edit committed at or before it (0 when the
    /// spec was never edited).
    pub fn generation_at(&self, epoch: u64) -> u32 {
        self.events
            .iter()
            .filter(|e| e.epoch <= epoch)
            .filter_map(|e| match e.kind {
                GrowthKind::EditSpec { generation } => Some(generation),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The cumulative content digest at `epoch` (epoch 0 is the empty
    /// log). Panics when `epoch` has not been committed yet.
    pub fn epoch_digest(&self, epoch: u64) -> u64 {
        self.digests[epoch as usize]
    }

    /// All cumulative digests, indexed by epoch.
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grown(seed: u64) -> DatasetLog {
        let mut log = DatasetLog::new(seed);
        log.append_partition(0, 1_000_000);
        log.append_partition(1, 2_000_000);
        log.commit();
        log.edit_spec();
        log.commit();
        log.commit(); // quiet epoch
        log.append_partition(0, 3_000_000);
        log.commit();
        log
    }

    #[test]
    fn epochs_stamp_events_in_order() {
        let log = grown(7);
        assert_eq!(log.epoch(), 4);
        assert_eq!(log.events().len(), 4);
        let epochs: Vec<u64> = log.events().iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![1, 1, 2, 4]);
        let indices: Vec<u64> = log.events().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(log.events_in(3).count(), 0, "quiet epoch holds nothing");
    }

    #[test]
    fn appends_and_generation_are_cumulative_views() {
        let log = grown(7);
        assert_eq!(log.appends_for(0, 1).len(), 1);
        assert_eq!(log.appends_for(0, 4).len(), 2);
        assert_eq!(log.appends_for(1, 4).len(), 1);
        assert_eq!(log.generation_at(1), 0);
        assert_eq!(log.generation_at(2), 1);
        assert_eq!(log.generation_at(4), 1);
    }

    #[test]
    fn same_seed_same_log_bit_identical_digests() {
        let a = grown(42);
        let b = grown(42);
        assert_eq!(a.digests(), b.digests());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_diverge_everywhere() {
        let a = grown(1);
        let b = grown(2);
        assert_ne!(a.epoch_digest(0), b.epoch_digest(0));
        assert_ne!(a.epoch_digest(4), b.epoch_digest(4));
        for (ea, eb) in a.events().iter().zip(b.events()) {
            assert_ne!(ea.content_hash, eb.content_hash);
        }
    }

    #[test]
    fn content_hashes_are_unique_within_a_log() {
        let log = grown(9);
        let mut hashes: Vec<u64> = log.events().iter().map(|e| e.content_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), log.events().len());
    }

    #[test]
    fn quiet_commits_still_advance_the_digest() {
        let mut log = DatasetLog::new(5);
        let d0 = log.epoch_digest(0);
        log.commit();
        let d1 = log.epoch_digest(1);
        assert_ne!(d0, d1, "the epoch counter is part of the digest");
        assert_eq!(log.events().len(), 0);
    }

    #[test]
    fn spec_edits_number_their_generations() {
        let mut log = DatasetLog::new(3);
        log.edit_spec();
        log.edit_spec();
        log.commit();
        assert_eq!(log.generation_at(1), 2, "two staged edits, two bumps");
        log.edit_spec();
        log.commit();
        assert_eq!(log.generation_at(2), 3);
    }
}
