//! Jagged (ragged) arrays: per-event variable-length lists over flat
//! storage, the core data shape of HEP columnar analysis (awkward-array's
//! ListOffsetArray).

/// A jagged array of `f64`: `len()` events, each owning a contiguous slice
//  of `values`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Jagged {
    /// `offsets.len() == len() + 1`; event `i` spans
    /// `values[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    values: Vec<f64>,
}

impl Jagged {
    /// An empty jagged array (zero events).
    pub fn new() -> Self {
        Jagged {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Build from per-event lists.
    pub fn from_lists<I, J>(lists: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = f64>,
    {
        let mut j = Jagged::new();
        for list in lists {
            j.push_event(list);
        }
        j
    }

    /// Build from raw offsets and values.
    ///
    /// # Panics
    /// If offsets are not monotone starting at 0 and ending at
    /// `values.len()`.
    pub fn from_parts(offsets: Vec<u32>, values: Vec<f64>) -> Self {
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            values.len(),
            "offsets must end at values.len()"
        );
        Jagged { offsets, values }
    }

    /// Append one event's list.
    pub fn push_event<I: IntoIterator<Item = f64>>(&mut self, items: I) {
        self.values.extend(items);
        self.offsets.push(self.values.len() as u32);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of items across all events.
    pub fn total_items(&self) -> usize {
        self.values.len()
    }

    /// Items of event `i`.
    pub fn event(&self, i: usize) -> &[f64] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.values[lo..hi]
    }

    /// Number of items in event `i`.
    pub fn count(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate events as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// The flat value storage.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Per-event counts as a dense vector.
    pub fn counts(&self) -> Vec<u32> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// A copy with every value transformed (offsets unchanged) — used for
    /// systematic variations like jet-energy-scale shifts.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> Jagged {
        Jagged {
            offsets: self.offsets.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Concatenate another jagged array after this one (same column,
    /// consecutive event ranges).
    pub fn extend_from(&mut self, other: &Jagged) {
        let base = self.values.len() as u32;
        self.values.extend_from_slice(&other.values);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| o + base));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let j = Jagged::from_lists(vec![vec![1.0, 2.0], vec![], vec![3.0]]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.total_items(), 3);
        assert_eq!(j.event(0), &[1.0, 2.0]);
        assert_eq!(j.event(1), &[] as &[f64]);
        assert_eq!(j.event(2), &[3.0]);
        assert_eq!(j.count(0), 2);
        assert_eq!(j.counts(), vec![2, 0, 1]);
    }

    #[test]
    fn empty_array() {
        let j = Jagged::new();
        assert!(j.is_empty());
        assert_eq!(j.total_items(), 0);
    }

    #[test]
    fn from_parts_round_trip() {
        let j = Jagged::from_parts(vec![0, 2, 2, 5], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.event(2), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_parts_rejects_non_monotone() {
        Jagged::from_parts(vec![0, 3, 2], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "end at")]
    fn from_parts_rejects_bad_terminal() {
        Jagged::from_parts(vec![0, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn extend_concatenates_event_ranges() {
        let mut a = Jagged::from_lists(vec![vec![1.0], vec![2.0, 3.0]]);
        let b = Jagged::from_lists(vec![vec![], vec![4.0]]);
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.event(1), &[2.0, 3.0]);
        assert_eq!(a.event(2), &[] as &[f64]);
        assert_eq!(a.event(3), &[4.0]);
    }

    #[test]
    fn map_values_preserves_shape() {
        let j = Jagged::from_lists(vec![vec![1.0, 2.0], vec![], vec![3.0]]);
        let scaled = j.map_values(|v| v * 2.0);
        assert_eq!(scaled.counts(), j.counts());
        assert_eq!(scaled.event(0), &[2.0, 4.0]);
        assert_eq!(scaled.event(2), &[6.0]);
    }

    #[test]
    fn iter_matches_event_access() {
        let j = Jagged::from_lists(vec![vec![1.0], vec![2.0, 3.0]]);
        let collected: Vec<Vec<f64>> = j.iter().map(|s| s.to_vec()).collect();
        assert_eq!(collected, vec![vec![1.0], vec![2.0, 3.0]]);
    }
}
