//! Deterministic, physics-shaped synthetic event generation.
//!
//! Generates collision-event batches whose statistical shape matches what
//! the DV3 and RS-TriPhoton selections care about:
//!
//! * jets with a steeply falling pₜ spectrum, Gaussian-ish η, uniform φ,
//!   and a b-tag discriminant that is a mixture of a light-flavour peak
//!   near 0 and a b-jet peak near 1;
//! * photons with their own falling pₜ spectrum — plus a small fraction of
//!   events with an injected three-photon resonance (the RS-TriPhoton
//!   signal);
//! * missing transverse energy (MET).
//!
//! Generation is deterministic per `(dataset, file_index, chunk_index)`, so
//! every execution strategy (simulated or real, any scheduler) sees
//! identical data — the cross-checks in `tests/` depend on this.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Poisson};

use crate::events::EventBatch;
use crate::jagged::Jagged;

/// Configurable event generator.
#[derive(Clone, Debug)]
pub struct EventGenerator {
    /// Mean jet multiplicity (Poisson).
    pub mean_jets: f64,
    /// Minimum jet pₜ (GeV); spectrum falls as a power law above this.
    pub jet_pt_min: f64,
    /// Power-law index of the jet pₜ spectrum (larger = steeper).
    pub jet_spectrum_index: f64,
    /// Fraction of jets that are b-jets (b-tag score peaked near 1).
    pub b_fraction: f64,
    /// Mean photon multiplicity (Poisson).
    pub mean_photons: f64,
    /// Fraction of events with an injected tri-photon resonance.
    pub triphoton_signal_fraction: f64,
    /// Mass of the injected heavy resonance (GeV).
    pub resonance_mass: f64,
}

impl Default for EventGenerator {
    fn default() -> Self {
        EventGenerator {
            mean_jets: 4.0,
            jet_pt_min: 20.0,
            jet_spectrum_index: 3.5,
            b_fraction: 0.15,
            mean_photons: 0.4,
            triphoton_signal_fraction: 0.003,
            resonance_mass: 750.0,
        }
    }
}

impl EventGenerator {
    /// Derive the deterministic RNG for one chunk of one file.
    fn chunk_rng(dataset: &str, file_index: u32, chunk_index: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in dataset.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h ^= (file_index as u64) << 32 | chunk_index as u64;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        StdRng::seed_from_u64(h)
    }

    /// Generate `n_events` events for the given chunk coordinates.
    pub fn generate(
        &self,
        dataset: &str,
        file_index: u32,
        chunk_index: u32,
        n_events: usize,
    ) -> EventBatch {
        let mut rng = Self::chunk_rng(dataset, file_index, chunk_index);
        let jet_mult = Poisson::new(self.mean_jets.max(1e-9)).expect("positive mean");
        let photon_mult = Poisson::new(self.mean_photons.max(1e-9)).expect("positive mean");
        let eta_dist = Normal::new(0.0f64, 1.6).expect("finite");

        let mut met = Vec::with_capacity(n_events);
        let mut jet_pt = Jagged::new();
        let mut jet_eta = Jagged::new();
        let mut jet_phi = Jagged::new();
        let mut jet_mass = Jagged::new();
        let mut jet_btag = Jagged::new();
        let mut ph_pt = Jagged::new();
        let mut ph_eta = Jagged::new();
        let mut ph_phi = Jagged::new();

        for _ in 0..n_events {
            // MET: exponential with a 25 GeV scale.
            met.push(-25.0 * rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln());

            let nj = jet_mult.sample(&mut rng) as usize;
            let (mut pts, mut etas, mut phis, mut masses, mut btags) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for _ in 0..nj {
                pts.push(self.sample_falling_pt(self.jet_pt_min, &mut rng));
                etas.push(eta_dist.sample(&mut rng).clamp(-4.7, 4.7));
                phis.push(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI));
                masses.push(rng.gen_range(3.0..30.0));
                btags.push(self.sample_btag(&mut rng));
            }
            // Jets arrive pt-sorted, as in NanoAOD.
            sort_by_leading(
                &mut pts,
                &mut [&mut etas, &mut phis, &mut masses, &mut btags],
            );
            jet_pt.push_event(pts);
            jet_eta.push_event(etas);
            jet_phi.push_event(phis);
            jet_mass.push_event(masses);
            jet_btag.push_event(btags);

            // Photons: background multiplicity, plus occasional signal.
            let signal = rng.gen_bool(self.triphoton_signal_fraction.clamp(0.0, 1.0));
            let np = if signal {
                3
            } else {
                photon_mult.sample(&mut rng) as usize
            };
            let (mut ppts, mut petas, mut pphis) = (Vec::new(), Vec::new(), Vec::new());
            for k in 0..np {
                let pt = if signal {
                    // Hard photons sharing the resonance mass scale.
                    self.resonance_mass / 3.0 * rng.gen_range(0.7..1.3)
                } else {
                    self.sample_falling_pt(15.0, &mut rng)
                };
                ppts.push(pt);
                petas.push(eta_dist.sample(&mut rng).clamp(-2.5, 2.5));
                let phi0 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                // Signal photons are roughly isotropic in the resonance
                // frame; approximate with spread around a common axis.
                pphis.push(if signal {
                    wrap_phi(phi0 + k as f64 * 2.0)
                } else {
                    phi0
                });
            }
            sort_by_leading(&mut ppts, &mut [&mut petas, &mut pphis]);
            ph_pt.push_event(ppts);
            ph_eta.push_event(petas);
            ph_phi.push_event(pphis);
        }

        let mut batch = EventBatch::new(n_events);
        batch.set_scalar("MET_pt", met);
        batch.set_jagged("Jet_pt", jet_pt);
        batch.set_jagged("Jet_eta", jet_eta);
        batch.set_jagged("Jet_phi", jet_phi);
        batch.set_jagged("Jet_mass", jet_mass);
        batch.set_jagged("Jet_btag", jet_btag);
        batch.set_jagged("Photon_pt", ph_pt);
        batch.set_jagged("Photon_eta", ph_eta);
        batch.set_jagged("Photon_phi", ph_phi);
        batch
    }

    /// Falling power-law pₜ spectrum: inverse-CDF sampling of
    /// `p(pt) ∝ pt^-index` above `pt_min`.
    fn sample_falling_pt<R: Rng + ?Sized>(&self, pt_min: f64, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let a = self.jet_spectrum_index - 1.0;
        (pt_min * u.powf(-1.0 / a)).min(6500.0)
    }

    /// B-tag discriminant: light jets pile up near 0, b-jets near 1.
    fn sample_btag<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen_bool(self.b_fraction.clamp(0.0, 1.0)) {
            1.0 - rng.gen_range(0.0f64..1.0).powi(3) * 0.5
        } else {
            rng.gen_range(0.0f64..1.0).powi(3) * 0.5
        }
    }
}

/// Sort `keys` descending and apply the same permutation to each companion.
fn sort_by_leading(keys: &mut [f64], companions: &mut [&mut Vec<f64>]) {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).expect("no NaN pt"));
    let sorted_keys: Vec<f64> = idx.iter().map(|&i| keys[i]).collect();
    keys.copy_from_slice(&sorted_keys);
    for comp in companions {
        let sorted: Vec<f64> = idx.iter().map(|&i| comp[i]).collect();
        **comp = sorted;
    }
}

fn wrap_phi(phi: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut p = (phi + std::f64::consts::PI).rem_euclid(two_pi);
    p -= std::f64::consts::PI;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = EventGenerator::default();
        let a = g.generate("SingleMu", 3, 7, 500);
        let b = g.generate("SingleMu", 3, 7, 500);
        assert_eq!(a.scalar("MET_pt"), b.scalar("MET_pt"));
        assert_eq!(a.jagged("Jet_pt"), b.jagged("Jet_pt"));
    }

    #[test]
    fn different_chunks_differ() {
        let g = EventGenerator::default();
        let a = g.generate("SingleMu", 3, 7, 100);
        let b = g.generate("SingleMu", 3, 8, 100);
        assert_ne!(a.scalar("MET_pt"), b.scalar("MET_pt"));
    }

    #[test]
    fn schema_is_complete() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 0, 0, 10);
        assert_eq!(b.len(), 10);
        for col in [
            "Jet_pt",
            "Jet_eta",
            "Jet_phi",
            "Jet_mass",
            "Jet_btag",
            "Photon_pt",
            "Photon_eta",
            "Photon_phi",
        ] {
            assert!(b.jagged(col).is_some(), "missing {col}");
            assert_eq!(b.jagged(col).unwrap().len(), 10);
        }
        assert_eq!(b.scalar("MET_pt").unwrap().len(), 10);
    }

    #[test]
    fn jet_collections_are_aligned() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 0, 0, 200);
        let pt = b.jagged("Jet_pt").unwrap();
        for col in ["Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag"] {
            assert_eq!(b.jagged(col).unwrap().counts(), pt.counts());
        }
    }

    #[test]
    fn jets_are_pt_sorted_descending() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 1, 2, 300);
        let pt = b.jagged("Jet_pt").unwrap();
        for ev in pt.iter() {
            for w in ev.windows(2) {
                assert!(w[0] >= w[1], "jets not pt-sorted: {w:?}");
            }
        }
    }

    #[test]
    fn jet_spectrum_falls() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 0, 0, 5000);
        let pts = b.jagged("Jet_pt").unwrap().values();
        let low = pts.iter().filter(|&&p| p < 40.0).count();
        let high = pts.iter().filter(|&&p| p >= 100.0).count();
        assert!(
            low > 5 * high,
            "spectrum not falling: low={low} high={high}"
        );
        assert!(pts.iter().all(|&p| p >= 20.0));
    }

    #[test]
    fn btag_is_bimodal() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 0, 0, 5000);
        let tags = b.jagged("Jet_btag").unwrap().values();
        assert!(tags.iter().all(|&t| (0.0..=1.0).contains(&t)));
        let mid = tags.iter().filter(|&&t| (0.4..0.6).contains(&t)).count();
        assert!((mid as f64) < 0.1 * tags.len() as f64, "b-tag not bimodal");
    }

    #[test]
    fn signal_fraction_injects_triphotons() {
        let g = EventGenerator {
            triphoton_signal_fraction: 0.5,
            ..EventGenerator::default()
        };
        let b = g.generate("sig", 0, 0, 2000);
        let np = b.jagged("Photon_pt").unwrap().counts();
        let three = np.iter().filter(|&&n| n >= 3).count();
        assert!(
            three as f64 > 0.4 * 2000.0,
            "3-photon rate too low: {three}"
        );
    }

    #[test]
    fn met_is_positive_with_sane_mean() {
        let g = EventGenerator::default();
        let b = g.generate("ds", 0, 0, 5000);
        let met = b.scalar("MET_pt").unwrap();
        assert!(met.iter().all(|&m| m > 0.0));
        let mean = met.iter().sum::<f64>() / met.len() as f64;
        assert!((mean - 25.0).abs() < 2.0, "MET mean {mean}");
    }

    #[test]
    fn phi_wraps_into_range() {
        assert!((wrap_phi(7.0)).abs() <= std::f64::consts::PI);
        assert!((wrap_phi(-7.0)).abs() <= std::f64::consts::PI);
        assert!((wrap_phi(0.5) - 0.5).abs() < 1e-12);
    }
}
