//! Histograms with commutative, associative merge.
//!
//! HEP analyses end in histograms, and the paper's DAGs end in histogram
//! *accumulation*. Because addition of bin contents is commutative and
//! associative, the accumulation "can often be done hierarchically" (§II-A)
//! — the algebraic fact that justifies the Fig 11 tree-reduction rewrite.
//! The property tests pin this down: merging in any order or grouping
//! yields identical results.

use std::collections::BTreeMap;

/// A fixed-binning 1-D histogram with under/overflow and weight tracking.
#[derive(Clone, Debug, PartialEq)]
pub struct Hist1D {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    underflow: f64,
    overflow: f64,
    sum_w: f64,
    sum_wx: f64,
}

impl Hist1D {
    /// A histogram with `bins` regular bins on `[lo, hi)`.
    ///
    /// # Panics
    /// If `bins == 0` or `hi <= lo`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram axis");
        Hist1D {
            lo,
            hi,
            counts: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
            sum_w: 0.0,
            sum_wx: 0.0,
        }
    }

    /// Number of regular bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Axis bounds `(lo, hi)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Fill with unit weight.
    pub fn fill(&mut self, x: f64) {
        self.fill_weighted(x, 1.0);
    }

    /// Fill with the given weight.
    pub fn fill_weighted(&mut self, x: f64, w: f64) {
        if x < self.lo {
            self.underflow += w;
        } else if x >= self.hi {
            self.overflow += w;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            // Guard the pathological x == hi-epsilon rounding to len().
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += w;
        }
        self.sum_w += w;
        self.sum_wx += w * x;
    }

    /// Fill from a slice.
    pub fn fill_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.fill(x);
        }
    }

    /// Bin contents (regular bins only).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Underflow weight.
    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    /// Overflow weight.
    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    /// Total filled weight (including under/overflow).
    pub fn total(&self) -> f64 {
        self.sum_w
    }

    /// Weighted mean of fills, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.sum_w != 0.0).then(|| self.sum_wx / self.sum_w)
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// If the binnings differ.
    pub fn merge(&mut self, other: &Hist1D) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different binnings"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum_w += other.sum_w;
        self.sum_wx += other.sum_wx;
    }

    /// Approximate serialized size in bytes (for transfer cost modeling).
    pub fn byte_size(&self) -> u64 {
        (self.counts.len() * 8 + 48) as u64
    }

    /// The raw weighted sum of fill positions (Σ w·x) — exposed for exact
    /// serialization.
    pub fn sum_wx(&self) -> f64 {
        self.sum_wx
    }

    /// Rebuild a histogram from its exact raw state (the codec's inverse).
    ///
    /// # Panics
    /// If `counts` is empty or `hi <= lo`.
    pub fn from_raw_parts(
        lo: f64,
        hi: f64,
        counts: Vec<f64>,
        underflow: f64,
        overflow: f64,
        sum_w: f64,
        sum_wx: f64,
    ) -> Self {
        assert!(!counts.is_empty() && hi > lo, "invalid histogram axis");
        Hist1D {
            lo,
            hi,
            counts,
            underflow,
            overflow,
            sum_w,
            sum_wx,
        }
    }
}

/// A fixed-binning 2-D histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct Hist2D {
    x_bins: usize,
    y_bins: usize,
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    counts: Vec<f64>,
    outside: f64,
    sum_w: f64,
}

impl Hist2D {
    /// A 2-D histogram with regular binning on both axes.
    pub fn new(x_bins: usize, x_lo: f64, x_hi: f64, y_bins: usize, y_lo: f64, y_hi: f64) -> Self {
        assert!(x_bins > 0 && y_bins > 0 && x_hi > x_lo && y_hi > y_lo);
        Hist2D {
            x_bins,
            y_bins,
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            counts: vec![0.0; x_bins * y_bins],
            outside: 0.0,
            sum_w: 0.0,
        }
    }

    /// Fill with the given weight.
    pub fn fill_weighted(&mut self, x: f64, y: f64, w: f64) {
        self.sum_w += w;
        if x < self.x_lo || x >= self.x_hi || y < self.y_lo || y >= self.y_hi {
            self.outside += w;
            return;
        }
        let xi = (((x - self.x_lo) / (self.x_hi - self.x_lo) * self.x_bins as f64) as usize)
            .min(self.x_bins - 1);
        let yi = (((y - self.y_lo) / (self.y_hi - self.y_lo) * self.y_bins as f64) as usize)
            .min(self.y_bins - 1);
        self.counts[yi * self.x_bins + xi] += w;
    }

    /// Fill with unit weight.
    pub fn fill(&mut self, x: f64, y: f64) {
        self.fill_weighted(x, y, 1.0);
    }

    /// Bin content at `(xi, yi)`.
    pub fn get(&self, xi: usize, yi: usize) -> f64 {
        self.counts[yi * self.x_bins + xi]
    }

    /// Total filled weight.
    pub fn total(&self) -> f64 {
        self.sum_w
    }

    /// Weight that fell outside both axes' ranges.
    pub fn outside(&self) -> f64 {
        self.outside
    }

    /// Merge another 2-D histogram into this one.
    ///
    /// # Panics
    /// If the binnings differ.
    pub fn merge(&mut self, other: &Hist2D) {
        assert!(
            self.x_bins == other.x_bins
                && self.y_bins == other.y_bins
                && self.x_lo == other.x_lo
                && self.x_hi == other.x_hi
                && self.y_lo == other.y_lo
                && self.y_hi == other.y_hi,
            "cannot merge 2-D histograms with different binnings"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.outside += other.outside;
        self.sum_w += other.sum_w;
    }

    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.counts.len() * 8 + 64) as u64
    }

    /// Borrow the exact raw state (the codec's view).
    pub fn raw_parts(&self) -> Hist2DRaw<'_> {
        Hist2DRaw {
            x_bins: self.x_bins,
            y_bins: self.y_bins,
            x_lo: self.x_lo,
            x_hi: self.x_hi,
            y_lo: self.y_lo,
            y_hi: self.y_hi,
            counts: &self.counts,
            outside: self.outside,
            sum_w: self.sum_w,
        }
    }

    /// Rebuild a 2-D histogram from its exact raw state.
    ///
    /// # Panics
    /// If the shape is inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        x_bins: usize,
        y_bins: usize,
        x_lo: f64,
        x_hi: f64,
        y_lo: f64,
        y_hi: f64,
        counts: Vec<f64>,
        outside: f64,
        sum_w: f64,
    ) -> Self {
        assert!(x_bins > 0 && y_bins > 0 && counts.len() == x_bins * y_bins);
        assert!(x_hi > x_lo && y_hi > y_lo);
        Hist2D {
            x_bins,
            y_bins,
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            counts,
            outside,
            sum_w,
        }
    }
}

/// A borrowed view of a [`Hist2D`]'s exact state, for serialization.
#[derive(Clone, Copy, Debug)]
pub struct Hist2DRaw<'a> {
    /// X-axis bin count.
    pub x_bins: usize,
    /// Y-axis bin count.
    pub y_bins: usize,
    /// X-axis lower bound.
    pub x_lo: f64,
    /// X-axis upper bound.
    pub x_hi: f64,
    /// Y-axis lower bound.
    pub y_lo: f64,
    /// Y-axis upper bound.
    pub y_hi: f64,
    /// Row-major bin contents.
    pub counts: &'a [f64],
    /// Weight outside both ranges.
    pub outside: f64,
    /// Total filled weight.
    pub sum_w: f64,
}

/// A named collection of histograms — what one analysis task emits and
/// what accumulation tasks merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSet {
    h1: BTreeMap<String, Hist1D>,
    h2: BTreeMap<String, Hist2D>,
    /// Number of events processed into this set (additive on merge).
    pub events_processed: u64,
}

impl HistogramSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert/replace a 1-D histogram.
    pub fn set_h1(&mut self, name: impl Into<String>, h: Hist1D) {
        self.h1.insert(name.into(), h);
    }

    /// Insert/replace a 2-D histogram.
    pub fn set_h2(&mut self, name: impl Into<String>, h: Hist2D) {
        self.h2.insert(name.into(), h);
    }

    /// Borrow a 1-D histogram.
    pub fn h1(&self, name: &str) -> Option<&Hist1D> {
        self.h1.get(name)
    }

    /// Borrow a 2-D histogram.
    pub fn h2(&self, name: &str) -> Option<&Hist2D> {
        self.h2.get(name)
    }

    /// Mutably borrow a 1-D histogram.
    pub fn h1_mut(&mut self, name: &str) -> Option<&mut Hist1D> {
        self.h1.get_mut(name)
    }

    /// Mutably borrow a 2-D histogram.
    pub fn h2_mut(&mut self, name: &str) -> Option<&mut Hist2D> {
        self.h2.get_mut(name)
    }

    /// Names of all 1-D histograms, sorted.
    pub fn h1_names(&self) -> impl Iterator<Item = &str> {
        self.h1.keys().map(|s| s.as_str())
    }

    /// Names of all 2-D histograms, sorted.
    pub fn h2_names(&self) -> impl Iterator<Item = &str> {
        self.h2.keys().map(|s| s.as_str())
    }

    /// Merge another set into this one. Histograms present in only one set
    /// are carried over; shared names must have identical binnings.
    pub fn merge(&mut self, other: &HistogramSet) {
        for (name, h) in &other.h1 {
            match self.h1.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.h1.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, h) in &other.h2 {
            match self.h2.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.h2.insert(name.clone(), h.clone());
                }
            }
        }
        self.events_processed += other.events_processed;
    }

    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.h1.values().map(|h| h.byte_size()).sum::<u64>()
            + self.h2.values().map(|h| h.byte_size()).sum::<u64>()
            + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_places_values_in_bins() {
        let mut h = Hist1D::new(10, 0.0, 100.0);
        h.fill(5.0);
        h.fill(95.0);
        h.fill(95.0);
        assert_eq!(h.counts()[0], 1.0);
        assert_eq!(h.counts()[9], 2.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Hist1D::new(4, 0.0, 1.0);
        h.fill(-0.5);
        h.fill(1.0); // hi is exclusive
        h.fill(2.0);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 2.0);
        assert_eq!(h.counts().iter().sum::<f64>(), 0.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn weighted_fill_and_mean() {
        let mut h = Hist1D::new(2, 0.0, 10.0);
        h.fill_weighted(2.0, 3.0);
        h.fill_weighted(8.0, 1.0);
        assert_eq!(h.total(), 4.0);
        assert!((h.mean().unwrap() - (2.0 * 3.0 + 8.0) / 4.0).abs() < 1e-12);
        assert_eq!(Hist1D::new(2, 0.0, 1.0).mean(), None);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Hist1D::new(4, 0.0, 4.0);
        let mut b = Hist1D::new(4, 0.0, 4.0);
        a.fill(0.5);
        b.fill(0.5);
        b.fill(3.5);
        b.fill(-1.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.underflow(), 1.0);
        assert_eq!(a.total(), 4.0);
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_rejects_mismatched_axes() {
        let mut a = Hist1D::new(4, 0.0, 4.0);
        let b = Hist1D::new(5, 0.0, 4.0);
        a.merge(&b);
    }

    #[test]
    fn bin_lo_edges() {
        let h = Hist1D::new(4, 0.0, 8.0);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(2), 4.0);
    }

    #[test]
    fn hist2d_fill_and_get() {
        let mut h = Hist2D::new(2, 0.0, 2.0, 2, 0.0, 2.0);
        h.fill(0.5, 1.5);
        h.fill(1.5, 1.5);
        h.fill(5.0, 0.0); // outside
        assert_eq!(h.get(0, 1), 1.0);
        assert_eq!(h.get(1, 1), 1.0);
        assert_eq!(h.outside(), 1.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn hist2d_merge() {
        let mut a = Hist2D::new(2, 0.0, 2.0, 2, 0.0, 2.0);
        let mut b = a.clone();
        a.fill(0.5, 0.5);
        b.fill(0.5, 0.5);
        a.merge(&b);
        assert_eq!(a.get(0, 0), 2.0);
    }

    #[test]
    fn set_merge_is_union_with_addition() {
        let mut a = HistogramSet::new();
        let mut h = Hist1D::new(2, 0.0, 2.0);
        h.fill(0.5);
        a.set_h1("met", h.clone());
        a.events_processed = 10;

        let mut b = HistogramSet::new();
        b.set_h1("met", h);
        let mut other = Hist1D::new(3, 0.0, 3.0);
        other.fill(1.0);
        b.set_h1("mass", other);
        b.events_processed = 5;

        a.merge(&b);
        assert_eq!(a.h1("met").unwrap().total(), 2.0);
        assert_eq!(a.h1("mass").unwrap().total(), 1.0);
        assert_eq!(a.events_processed, 15);
    }

    #[test]
    fn byte_sizes_are_positive_and_scale() {
        let small = Hist1D::new(10, 0.0, 1.0);
        let large = Hist1D::new(1000, 0.0, 1.0);
        assert!(large.byte_size() > small.byte_size());
        let set = HistogramSet::new();
        assert!(set.byte_size() > 0);
    }
}
