//! Property tests of the chaos/recovery contract.
//!
//! 1. **Completes or quarantines, never panics.** For arbitrary finite
//!    fault plans under the default (graceful) recovery policy, an
//!    engine run always *finishes* — `Completed` or `Degraded` — and the
//!    accounting invariants hold. No fault combination may wedge or
//!    crash the event loop.
//! 2. **Thread-count independence in vine-exec.** The threaded runtime's
//!    deterministic chaos injects exactly the same fault schedule (and
//!    produces bit-identical physics) regardless of worker thread count.

use proptest::prelude::*;
use vine_chaos::{ExitClass, Fault, FaultPlan};
use vine_cluster::ClusterSpec;
use vine_core::{EngineConfig, RecoveryPolicy, RunRequest};
use vine_dag::{TaskGraph, TaskKind};
use vine_simcore::{SimDur, SimTime};

const MB: u64 = 1_000_000;

/// A small map+reduce graph: `n` process tasks into one accumulate.
fn small_graph(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut partials = Vec::new();
    for i in 0..n {
        let f = g.add_external_file(format!("chunk{i}"), 10 * MB);
        let (_, outs) = g.add_task(format!("p{i}"), TaskKind::Process, vec![f], &[MB], 1.0);
        partials.push(outs[0]);
    }
    g.add_task("acc", TaskKind::Accumulate, partials, &[MB], 0.5);
    g
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.6,   // task-failure probability
        0.0f64..0.002, // preemption rate (events / worker / sec)
        0.0f64..0.5,   // corruption rate
        1.0f64..8.0,   // straggler slow factor
        0.0f64..1.0,   // straggler fraction
        0.0f64..1.0,   // link factor (0 = partition)
        0.0f64..1.0,   // link fraction
    )
        .prop_map(
            |(seed, prob, preempt, bitrot, slow, sfrac, lfactor, lfrac)| {
                FaultPlan::none()
                    .with_seed(seed)
                    .with(Fault::TaskFailure {
                        prob,
                        exit: ExitClass::Crash,
                    })
                    .with(Fault::Preemption {
                        rate_per_sec: preempt,
                    })
                    .with(Fault::CacheCorruption {
                        rate_per_sec: bitrot,
                    })
                    .with(Fault::Straggler {
                        start: SimTime::from_secs(0),
                        duration: SimDur::from_secs(10_000),
                        slow_factor: slow,
                        fraction: sfrac,
                    })
                    .with(Fault::LinkDegrade {
                        start: SimTime::from_secs(5),
                        duration: SimDur::from_secs(30),
                        factor: lfactor,
                        fraction: lfrac,
                    })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn finite_plans_complete_or_quarantine_never_panic(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok());
        let cfg = EngineConfig::stack3(ClusterSpec::standard(4), 42)
            .deterministic()
            .with_chaos(plan)
            .with_recovery(RecoveryPolicy::default());
        let r = RunRequest::new(cfg, small_graph(16)).run();
        // Graceful degradation: the run always finishes, one way or the
        // other. Quarantined tasks are the only permitted casualty.
        prop_assert!(r.finished(), "outcome: {:?}", r.outcome);
        if r.completed() {
            prop_assert_eq!(r.stats.quarantined_tasks, 0);
        } else {
            prop_assert!(r.stats.quarantined_tasks > 0);
        }
        // Every retry corresponds to a budget-consuming task-level
        // failure (budget-exhausting failures quarantine instead of
        // retrying), and backoff time only accrues with retries.
        prop_assert!(r.stats.retries <= r.stats.transient_failures + r.stats.task_timeouts);
        if r.stats.retries == 0 {
            prop_assert_eq!(r.stats.backoff_time_us, 0);
        }
    }

    #[test]
    fn same_plan_same_seed_replays_bit_identically(plan in arb_plan()) {
        let run = || {
            let cfg = EngineConfig::stack3(ClusterSpec::standard(4), 42)
                .deterministic()
                .with_chaos(plan.clone())
                .with_recovery(RecoveryPolicy::hardened());
            RunRequest::new(cfg, small_graph(12)).run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.stats.preemptions, b.stats.preemptions);
        prop_assert_eq!(a.stats.transient_failures, b.stats.transient_failures);
        prop_assert_eq!(a.stats.retries, b.stats.retries);
        prop_assert_eq!(a.stats.quarantined_tasks, b.stats.quarantined_tasks);
        prop_assert_eq!(a.stats.corruptions_detected, b.stats.corruptions_detected);
    }
}

mod exec_determinism {
    use super::*;
    use vine_analysis::Dv3Processor;
    use vine_data::Dataset;
    use vine_exec::{ExecChaos, ExecMode, Executor};

    fn executor(threads: usize, chaos: ExecChaos) -> Executor {
        Executor {
            threads,
            mode: ExecMode::Serverless,
            import_work: 10_000,
            arity: 3,
            obs: false,
            chaos: Some(chaos),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn exec_chaos_is_thread_count_independent(
            seed in any::<u64>(),
            prob in 0.0f64..0.8,
            retries in 0u32..5,
            threads in 2usize..6,
        ) {
            let datasets = vec![Dataset::synthesize("ds0", 200 * 1024, 1024, 200, 2)];
            let chaos = ExecChaos { seed, failure_prob: prob, max_retries: retries };
            let proc = Dv3Processor::default();
            let one = executor(1, chaos).run(&proc, &datasets);
            let many = executor(threads, chaos).run(&proc, &datasets);
            prop_assert_eq!(one.transient_failures, many.transient_failures);
            prop_assert_eq!(one.tasks_executed, many.tasks_executed);
            prop_assert_eq!(one.final_result, many.final_result);
        }
    }
}
