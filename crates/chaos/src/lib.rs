//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a composable list of typed fault families plus a
//! dedicated chaos seed. The plan itself is pure data: the engine compiles
//! it into scheduled simulator events whose randomness comes exclusively
//! from indexed RNG streams derived from [`FaultPlan::chaos_seed`], so two
//! runs with the same (workload, plan, seed) are bit-identical, and
//! changing the chaos seed perturbs *only* the injected faults — task
//! durations, batch arrivals, and every other stochastic input keep their
//! draws.
//!
//! Fault families (§IV of the paper motivates the first; the rest model
//! the failure classes opportunistic analysis facilities actually see):
//!
//! * [`Fault::Preemption`] — per-worker Poisson worker loss. Subsumes the
//!   engine's legacy bare `PreemptionModel` path: when a plan carries a
//!   preemption fault it takes precedence over `EngineConfig::preemption`.
//! * [`Fault::Straggler`] — during a window, a deterministic fraction of
//!   workers computes slower by `slow_factor` and their links degrade by
//!   the same factor.
//! * [`Fault::TaskFailure`] — each task attempt fails with probability
//!   `prob`, classified by an [`ExitClass`].
//! * [`Fault::LinkDegrade`] — during a window, a fraction of workers has
//!   its fabric bandwidth multiplied by `factor`; `factor == 0` is a full
//!   partition (flows stall and resume, they are not lost).
//! * [`Fault::CacheCorruption`] — per-worker Poisson corruption of one
//!   resident cache entry; detected as a checksum mismatch on the next
//!   read and repaired through lineage like any lost file.
//!
//! Plans are built in code, from the named [presets](FaultPlan::preset),
//! or parsed from a compact spec string (see [`FaultPlan::parse`]).

#![deny(unsafe_code)]

use vine_simcore::{SimDur, SimTime};

/// How a transiently failed task attempt presented.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitClass {
    /// Non-zero exit / signal: the generic retryable crash.
    Crash,
    /// Killed by the out-of-memory reaper.
    Oom,
    /// I/O error reading inputs or writing outputs.
    IoError,
}

impl ExitClass {
    /// Stable lowercase name (spec strings, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            ExitClass::Crash => "crash",
            ExitClass::Oom => "oom",
            ExitClass::IoError => "io",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "crash" => Ok(ExitClass::Crash),
            "oom" => Ok(ExitClass::Oom),
            "io" => Ok(ExitClass::IoError),
            other => Err(format!("unknown exit class `{other}` (crash|oom|io)")),
        }
    }
}

/// One fault family instance inside a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Per-worker Poisson preemption at `rate_per_sec` events/second.
    Preemption { rate_per_sec: f64 },
    /// A slowdown window: `fraction` of workers (chosen deterministically
    /// from the chaos seed) computes `slow_factor`× slower between
    /// `start` and `start + duration`, and their links slow by the same
    /// factor. Compute scaling applies to attempts *started* inside the
    /// window; link scaling applies to in-flight transfers immediately.
    Straggler {
        start: SimTime,
        duration: SimDur,
        slow_factor: f64,
        fraction: f64,
    },
    /// Every task attempt fails with probability `prob` (drawn per
    /// attempt from an indexed stream, realized when the attempt ends).
    TaskFailure { prob: f64, exit: ExitClass },
    /// A bandwidth-degradation window: `fraction` of workers has both
    /// link directions multiplied by `factor` (0 = full partition).
    LinkDegrade {
        start: SimTime,
        duration: SimDur,
        factor: f64,
        fraction: f64,
    },
    /// Per-worker Poisson corruption of one unpinned resident cache
    /// entry at `rate_per_sec`.
    CacheCorruption { rate_per_sec: f64 },
}

impl Fault {
    /// Stable family name (spec strings, lint messages, CSV columns).
    pub fn family(&self) -> &'static str {
        match self {
            Fault::Preemption { .. } => "preempt",
            Fault::Straggler { .. } => "straggler",
            Fault::TaskFailure { .. } => "taskfail",
            Fault::LinkDegrade { .. } => "link",
            Fault::CacheCorruption { .. } => "bitrot",
        }
    }

    /// Bounds-check the family's parameters.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |v: f64, what: &str| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("{}: {what} must be finite and >= 0", self.family()))
            }
        };
        let fraction01 = |v: f64| {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{}: fraction must be in [0, 1]", self.family()))
            }
        };
        match *self {
            Fault::Preemption { rate_per_sec } => finite_nonneg(rate_per_sec, "rate"),
            Fault::Straggler {
                slow_factor,
                fraction,
                ..
            } => {
                if !slow_factor.is_finite() || slow_factor < 1.0 {
                    return Err("straggler: slow factor must be >= 1".into());
                }
                fraction01(fraction)
            }
            Fault::TaskFailure { prob, .. } => {
                if prob.is_finite() && (0.0..=1.0).contains(&prob) {
                    Ok(())
                } else {
                    Err("taskfail: prob must be in [0, 1]".into())
                }
            }
            Fault::LinkDegrade {
                factor, fraction, ..
            } => {
                if !factor.is_finite() || !(0.0..=1.0).contains(&factor) {
                    return Err("link: factor must be in [0, 1]".into());
                }
                fraction01(fraction)
            }
            Fault::CacheCorruption { rate_per_sec } => finite_nonneg(rate_per_sec, "rate"),
        }
    }
}

/// A seeded, composable fault-injection plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the chaos RNG streams; independent of the workload seed.
    pub chaos_seed: u64,
    /// The faults, in declaration order (order never affects draws: every
    /// stochastic choice uses an indexed stream keyed by family + entity).
    pub faults: Vec<Fault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults, engine behaves as before.
    pub fn none() -> Self {
        FaultPlan {
            chaos_seed: 0,
            faults: Vec::new(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder: replace the chaos seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = seed;
        self
    }

    /// Builder: append a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The preemption rate the plan requests, if any (last entry wins,
    /// matching spec-string override semantics).
    pub fn preemption_rate(&self) -> Option<f64> {
        self.faults.iter().rev().find_map(|f| match f {
            Fault::Preemption { rate_per_sec } => Some(*rate_per_sec),
            _ => None,
        })
    }

    /// Combined per-attempt failure probability and the exit class of the
    /// dominant (highest-probability) entry. Independent entries compose
    /// as `1 - Π(1 - pᵢ)`.
    pub fn task_failure(&self) -> Option<(f64, ExitClass)> {
        let mut survive = 1.0f64;
        let mut dominant: Option<(f64, ExitClass)> = None;
        for f in &self.faults {
            if let Fault::TaskFailure { prob, exit } = *f {
                survive *= 1.0 - prob;
                if dominant.is_none_or(|(p, _)| prob > p) {
                    dominant = Some((prob, exit));
                }
            }
        }
        dominant.map(|(_, exit)| (1.0 - survive, exit))
    }

    /// Summed per-worker cache-corruption rate.
    pub fn corruption_rate(&self) -> f64 {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::CacheCorruption { rate_per_sec } => *rate_per_sec,
                _ => 0.0,
            })
            .sum()
    }

    /// True when the plan carries a straggler window.
    pub fn has_stragglers(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Straggler { .. }))
    }

    /// Bounds-check every fault.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.faults {
            f.validate()?;
        }
        Ok(())
    }

    /// The names of the built-in presets, in canonical order.
    pub const PRESETS: [&'static str; 5] = ["campus", "storm", "stragglers", "flaky-net", "bitrot"];

    /// A named preset, or `None` for an unknown name.
    ///
    /// Rates are tuned so every preset *differentiates* the recovery
    /// policies on a short DV3-Small run (fig-chaos asserts ≥5 %
    /// makespan spread per preset): faults must actually fire inside a
    /// ~1-minute window and must surface as attempt-level failures that
    /// draw on the retry budget, or every policy ladder rung behaves
    /// identically.
    ///
    /// * `campus` — the opportunistic pool: a preemption every
    ///   worker-minute or so plus the crash-level failures evicted jobs
    ///   suffer.
    /// * `storm` — everything at once: brisk preemption, a slowdown
    ///   window, transient crashes, a link-degradation window, bitrot.
    /// * `stragglers` — a long window where 30 % of workers run 6× slow.
    /// * `flaky-net` — a deep bandwidth collapse then a full partition,
    ///   plus the transfer I/O errors a flaky network inflicts on
    ///   attempts.
    /// * `bitrot` — steady cache corruption (detected on cache-hit
    ///   re-reads) plus the mid-attempt I/O failures corrupt reads
    ///   surface.
    pub fn preset(name: &str) -> Option<FaultPlan> {
        let plan = match name {
            "campus" => FaultPlan::none()
                .with(Fault::Preemption {
                    rate_per_sec: 1.0 / 60.0,
                })
                .with(Fault::TaskFailure {
                    prob: 0.06,
                    exit: ExitClass::Crash,
                }),
            "storm" => FaultPlan::none()
                .with(Fault::Preemption {
                    rate_per_sec: 1.0 / 600.0,
                })
                .with(Fault::Straggler {
                    start: SimTime::from_secs(30),
                    duration: SimDur::from_secs(240),
                    slow_factor: 4.0,
                    fraction: 0.25,
                })
                .with(Fault::TaskFailure {
                    prob: 0.02,
                    exit: ExitClass::Crash,
                })
                .with(Fault::LinkDegrade {
                    start: SimTime::from_secs(60),
                    duration: SimDur::from_secs(120),
                    factor: 0.1,
                    fraction: 0.5,
                })
                .with(Fault::CacheCorruption {
                    rate_per_sec: 1.0 / 300.0,
                }),
            "stragglers" => FaultPlan::none().with(Fault::Straggler {
                start: SimTime::from_secs(0),
                duration: SimDur::from_secs(3600),
                slow_factor: 6.0,
                fraction: 0.3,
            }),
            "flaky-net" => FaultPlan::none()
                .with(Fault::LinkDegrade {
                    start: SimTime::from_secs(10),
                    duration: SimDur::from_secs(90),
                    factor: 0.05,
                    fraction: 0.5,
                })
                .with(Fault::LinkDegrade {
                    start: SimTime::from_secs(30),
                    duration: SimDur::from_secs(45),
                    factor: 0.0,
                    fraction: 0.25,
                })
                .with(Fault::TaskFailure {
                    prob: 0.08,
                    exit: ExitClass::IoError,
                }),
            "bitrot" => FaultPlan::none()
                .with(Fault::CacheCorruption { rate_per_sec: 0.1 })
                .with(Fault::TaskFailure {
                    prob: 0.08,
                    exit: ExitClass::IoError,
                }),
            _ => return None,
        };
        Some(plan)
    }

    /// Parse a preset name or a spec string (and validate the result).
    ///
    /// The grammar is `clause(;clause)*` where each clause is a preset
    /// name (its faults are appended), `seed=N`, or one of:
    ///
    /// ```text
    /// preempt:rate=R
    /// straggler:start=S,dur=D,slow=F,frac=P
    /// taskfail:prob=P[,exit=crash|oom|io]
    /// link:start=S,dur=D,factor=F,frac=P
    /// bitrot:rate=R
    /// ```
    ///
    /// Times are seconds (fractions allowed). Examples: `stragglers`,
    /// `campus;seed=7`, `taskfail:prob=0.05,exit=oom;bitrot:rate=0.01`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(preset) = Self::preset(clause) {
                plan.faults.extend(preset.faults);
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.chaos_seed = v.parse().map_err(|_| format!("seed: `{v}` is not a u64"))?;
                continue;
            }
            let (family, args) = match clause.split_once(':') {
                Some((f, a)) => (f, a),
                None => {
                    return Err(format!(
                        "unknown clause `{clause}` (not a preset, seed=N, or family:args)"
                    ))
                }
            };
            let kv = parse_kv(family, args)?;
            let get = |key: &str| -> Result<f64, String> {
                kv.iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("{family}: missing `{key}`"))
            };
            let fault = match family {
                "preempt" => Fault::Preemption {
                    rate_per_sec: get("rate")?,
                },
                "straggler" => Fault::Straggler {
                    start: SimTime::from_secs_f64(get("start")?),
                    duration: SimDur::from_secs_f64(get("dur")?),
                    slow_factor: get("slow")?,
                    fraction: get("frac")?,
                },
                "taskfail" => {
                    let exit = match args.split(',').find_map(|p| p.trim().strip_prefix("exit=")) {
                        Some(s) => ExitClass::parse(s)?,
                        None => ExitClass::Crash,
                    };
                    Fault::TaskFailure {
                        prob: get("prob")?,
                        exit,
                    }
                }
                "link" => Fault::LinkDegrade {
                    start: SimTime::from_secs_f64(get("start")?),
                    duration: SimDur::from_secs_f64(get("dur")?),
                    factor: get("factor")?,
                    fraction: get("frac")?,
                },
                "bitrot" => Fault::CacheCorruption {
                    rate_per_sec: get("rate")?,
                },
                other => {
                    return Err(format!(
                        "unknown fault family `{other}` (preempt|straggler|taskfail|link|bitrot)"
                    ))
                }
            };
            plan.faults.push(fault);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Canonical one-line description (logs, CSV provenance columns).
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|f| match *f {
                Fault::Preemption { rate_per_sec } => format!("preempt:rate={rate_per_sec}"),
                Fault::Straggler {
                    start,
                    duration,
                    slow_factor,
                    fraction,
                } => format!(
                    "straggler:start={},dur={},slow={slow_factor},frac={fraction}",
                    start.as_secs_f64(),
                    duration.as_secs_f64()
                ),
                Fault::TaskFailure { prob, exit } => {
                    format!("taskfail:prob={prob},exit={}", exit.name())
                }
                Fault::LinkDegrade {
                    start,
                    duration,
                    factor,
                    fraction,
                } => format!(
                    "link:start={},dur={},factor={factor},frac={fraction}",
                    start.as_secs_f64(),
                    duration.as_secs_f64()
                ),
                Fault::CacheCorruption { rate_per_sec } => {
                    format!("bitrot:rate={rate_per_sec}")
                }
            })
            .collect();
        format!("seed={};{}", self.chaos_seed, parts.join(";"))
    }
}

/// Split `k=v,k=v` args, parsing numeric values (non-numeric pairs such
/// as `exit=crash` are skipped here and handled by the caller).
fn parse_kv(family: &str, args: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for pair in args.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("{family}: `{pair}` is not key=value"))?;
        if k == "exit" {
            continue;
        }
        let num: f64 = v
            .parse()
            .map_err(|_| format!("{family}: `{v}` is not a number for `{k}`"))?;
        out.push((k.to_string(), num));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.preemption_rate(), None);
        assert_eq!(p.task_failure(), None);
        assert_eq!(p.corruption_rate(), 0.0);
        assert!(!p.has_stragglers());
        assert_eq!(p.describe(), "none");
    }

    #[test]
    fn all_presets_parse_and_validate() {
        for name in FaultPlan::PRESETS {
            let p = FaultPlan::preset(name).unwrap();
            assert!(!p.is_empty(), "{name} is empty");
            p.validate().unwrap();
            // Presets round-trip through parse().
            assert_eq!(FaultPlan::parse(name).unwrap().faults, p.faults);
        }
        assert!(FaultPlan::preset("nope").is_none());
    }

    #[test]
    fn spec_string_round_trips_through_describe() {
        let p = FaultPlan::parse(
            "seed=9;preempt:rate=0.001;straggler:start=10,dur=60,slow=4,frac=0.5;\
             taskfail:prob=0.05,exit=oom;link:start=5,dur=30,factor=0,frac=0.25;\
             bitrot:rate=0.02",
        )
        .unwrap();
        assert_eq!(p.chaos_seed, 9);
        assert_eq!(p.faults.len(), 5);
        assert_eq!(p.preemption_rate(), Some(0.001));
        let (prob, exit) = p.task_failure().unwrap();
        assert!((prob - 0.05).abs() < 1e-12);
        assert_eq!(exit, ExitClass::Oom);
        assert_eq!(p.corruption_rate(), 0.02);
        let reparsed = FaultPlan::parse(&p.describe()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn preset_composes_with_overrides() {
        let p = FaultPlan::parse("campus;seed=1337;bitrot:rate=0.5").unwrap();
        assert_eq!(p.chaos_seed, 1337);
        assert!(p.preemption_rate().is_some());
        assert_eq!(p.corruption_rate(), 0.5);
    }

    #[test]
    fn task_failure_probabilities_compose_independently() {
        let p = FaultPlan::none()
            .with(Fault::TaskFailure {
                prob: 0.5,
                exit: ExitClass::Crash,
            })
            .with(Fault::TaskFailure {
                prob: 0.5,
                exit: ExitClass::IoError,
            });
        let (prob, exit) = p.task_failure().unwrap();
        assert!((prob - 0.75).abs() < 1e-12);
        // Dominant class: first of the equally-probable entries.
        assert_eq!(exit, ExitClass::Crash);
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        for bad in [
            "preempt:rate=-1",
            "taskfail:prob=1.5",
            "straggler:start=0,dur=1,slow=0.5,frac=0.1",
            "straggler:start=0,dur=1,slow=2,frac=1.5",
            "link:start=0,dur=1,factor=2,frac=0.5",
            "bitrot:rate=-0.1",
            "taskfail:prob=0.1,exit=meteor",
            "gremlins:count=3",
            "seed=banana",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
