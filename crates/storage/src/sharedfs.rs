//! Shared (cluster-wide) filesystem models.
//!
//! §IV-A of the paper: the CMS group's 644 TB HDFS cluster on spinning disk
//! (triple-replicated, throughput-oriented, high latency) was replaced by a
//! 918 TB VAST NVMe parallel filesystem (low latency, POSIX). The paper's
//! Table I shows this hardware change alone was worth only 1.05× — the
//! model must therefore expose *both* per-access latency (where HDFS and
//! VAST differ enormously) and aggregate bandwidth (where the difference is
//! smaller than the manager-link bottleneck that actually dominated).
//!
//! A [`SharedFs`] is a parameter set. The simulation engine mounts it as a
//! fabric endpoint: a read becomes `open_latency` + a network flow whose
//! rate is capped by `per_stream_bw` and that shares `aggregate_bw` with
//! all concurrent accesses.

use vine_simcore::SimDur;

use crate::disk::DiskProfile;

/// Parameters of a cluster-wide shared filesystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedFs {
    /// Human-readable name ("hdfs", "vast", ...).
    pub name: &'static str,
    /// Cost of opening a file / resolving its metadata, seconds.
    pub open_latency_s: f64,
    /// Cost of one metadata operation (stat, directory lookup), seconds.
    /// Python import storms issue thousands of these (§IV-B, Fig 10).
    pub metadata_op_s: f64,
    /// Maximum rate a single stream can sustain, bytes/second.
    pub per_stream_bw: f64,
    /// Aggregate bandwidth ceiling across all concurrent streams,
    /// bytes/second.
    pub aggregate_bw: f64,
    /// Usable capacity, bytes.
    pub capacity: u64,
}

impl SharedFs {
    /// The legacy HDFS cluster: 644 TB of triple-replicated spinning disk
    /// on commodity nodes. High aggregate throughput, high per-access
    /// latency (NameNode round-trip + HDD seek), modest per-stream rate.
    pub fn hdfs() -> Self {
        let hdd = DiskProfile::spinning_hdd();
        SharedFs {
            name: "hdfs",
            // NameNode RPC + block location + first seek.
            open_latency_s: 35e-3,
            metadata_op_s: 2.5e-3,
            per_stream_bw: hdd.read_bw, // one block stream ~ one spindle
            aggregate_bw: 12e9,         // many spindles in parallel
            capacity: 644 * vine_simcore::units::TB / 3, // triple replication
        }
    }

    /// The VAST NVMe parallel filesystem: 918 TB logical / 676 TB usable,
    /// POSIX interface, NVMe latency.
    pub fn vast() -> Self {
        SharedFs {
            name: "vast",
            open_latency_s: 0.8e-3,
            metadata_op_s: 0.15e-3,
            per_stream_bw: 1.5e9,
            aggregate_bw: 40e9,
            capacity: 676 * vine_simcore::units::TB,
        }
    }

    /// Time for the open/metadata phase of one file access.
    pub fn open_time(&self) -> SimDur {
        SimDur::from_secs_f64(self.open_latency_s)
    }

    /// Time for `n` metadata operations.
    pub fn metadata_ops(&self, n: u64) -> SimDur {
        SimDur::from_secs_f64(self.metadata_op_s * n as f64)
    }

    /// Lower-bound duration of a single isolated read of `bytes` (open +
    /// stream at the per-stream cap). Under load the fabric stretches the
    /// streaming phase; this is the contention-free floor.
    pub fn isolated_read_time(&self, bytes: u64) -> SimDur {
        self.open_time() + SimDur::from_secs_f64(bytes as f64 / self.per_stream_bw)
    }

    /// The per-stream rate when `n` streams are active: aggregate bandwidth
    /// divided fairly, but never more than the per-stream cap.
    pub fn stream_rate(&self, n: usize) -> f64 {
        if n == 0 {
            self.per_stream_bw
        } else {
            (self.aggregate_bw / n as f64).min(self.per_stream_bw)
        }
    }

    /// Number of concurrent streams beyond which the aggregate ceiling,
    /// not the per-stream cap, limits each stream.
    pub fn saturation_streams(&self) -> usize {
        (self.aggregate_bw / self.per_stream_bw).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_simcore::units::GB;

    #[test]
    fn vast_latency_much_lower_than_hdfs() {
        let hdfs = SharedFs::hdfs();
        let vast = SharedFs::vast();
        assert!(vast.open_latency_s < hdfs.open_latency_s / 20.0);
        assert!(vast.metadata_op_s < hdfs.metadata_op_s / 10.0);
    }

    #[test]
    fn isolated_read_dominated_by_stream_for_large_files() {
        let vast = SharedFs::vast();
        let t = vast.isolated_read_time(15 * GB);
        assert!((t.as_secs_f64() - (0.8e-3 + 10.0)).abs() < 1e-6);
    }

    #[test]
    fn stream_rate_fair_shares_aggregate() {
        let fs = SharedFs::vast();
        assert_eq!(fs.stream_rate(1), fs.per_stream_bw);
        let n = 400;
        assert!((fs.stream_rate(n) - fs.aggregate_bw / n as f64).abs() < 1.0);
    }

    #[test]
    fn stream_rate_zero_streams_is_cap() {
        let fs = SharedFs::hdfs();
        assert_eq!(fs.stream_rate(0), fs.per_stream_bw);
    }

    #[test]
    fn saturation_point_consistent() {
        let fs = SharedFs::vast();
        let sat = fs.saturation_streams();
        assert!(fs.stream_rate(sat.saturating_sub(1).max(1)) <= fs.per_stream_bw);
        assert!(fs.stream_rate(sat + 1) < fs.per_stream_bw);
    }

    #[test]
    fn hdfs_capacity_reflects_replication() {
        // 644 TB raw / 3x replication.
        assert!(SharedFs::hdfs().capacity < 250 * vine_simcore::units::TB);
    }

    #[test]
    fn metadata_storm_cost_differs_by_fs() {
        // A Python import issuing 2000 metadata ops: seconds on HDFS,
        // sub-second on VAST. This asymmetry drives Fig 10.
        let hdfs_cost = SharedFs::hdfs().metadata_ops(2000);
        let vast_cost = SharedFs::vast().metadata_ops(2000);
        assert!(hdfs_cost.as_secs_f64() > 4.0);
        assert!(vast_cost.as_secs_f64() < 0.5);
    }
}
