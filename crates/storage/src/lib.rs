#![deny(unsafe_code)]

//! # vine-storage — storage substrate
//!
//! The paper's storage layer (§II-D, §IV-A) has three tiers, all modeled
//! here:
//!
//! * a **shared filesystem** serving the whole cluster — the legacy HDFS
//!   spinning-disk cluster and its VAST NVMe replacement, captured by
//!   [`SharedFs`] presets ([`SharedFs::hdfs`], [`SharedFs::vast`]);
//! * **node-local disks** at each worker ([`DiskProfile`]), whose capacity
//!   limits drive the Fig 11 cache-overflow failures;
//! * TaskVine's **per-worker cache** ([`LocalCache`]) keyed by
//!   content-derived [`CacheName`]s, with pinning and LRU eviction.
//!
//! The shared filesystem is a *parameter set* (latencies, per-stream and
//! aggregate bandwidth); the engine in `vine-core` wires it into the network
//! fabric so concurrent readers share its aggregate bandwidth fairly.

pub mod cache;
pub mod cachename;
pub mod disk;
pub mod sharedfs;

pub use cache::{CacheEntryKind, CacheError, LocalCache};
pub use cachename::CacheName;
pub use disk::DiskProfile;
pub use sharedfs::SharedFs;
