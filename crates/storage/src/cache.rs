//! Per-worker file cache (TaskVine "Retaining Data", §IV-B).
//!
//! Each TaskVine worker owns its node-local disk and retains every file it
//! stages or produces, keyed by [`CacheName`]. The manager consults these
//! caches to place tasks where their inputs already live. Entries in use by
//! a running task (or queued for a peer transfer) are *pinned* and cannot
//! be evicted; everything else is reclaimable in LRU order.
//!
//! When pinned data alone exceeds the disk, [`LocalCache::insert`] fails
//! with [`CacheError::WontFit`] — exactly the Fig 11 failure mode, where a
//! single-node reduction pins hundreds of gigabytes of histogram inputs on
//! one worker and kills it.

use std::collections::{BTreeMap, BTreeSet};

use crate::cachename::CacheName;

/// Why a file is in the cache; affects accounting and nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheEntryKind {
    /// Input data staged from the shared filesystem or a remote source.
    Input,
    /// Output produced by a task on this worker or fetched from a peer.
    Intermediate,
    /// A serverless library/environment installed on this worker.
    Library,
}

/// Errors from cache mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// The file cannot fit even after evicting every unpinned entry.
    /// Carries the shortfall in bytes.
    WontFit { needed: u64, reclaimable: u64 },
    /// The named entry does not exist.
    Missing,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::WontFit {
                needed,
                reclaimable,
            } => write!(
                f,
                "cache overflow: need {needed} bytes but only {reclaimable} reclaimable"
            ),
            CacheError::Missing => write!(f, "no such cache entry"),
        }
    }
}

impl std::error::Error for CacheError {}

#[derive(Clone, Debug)]
struct Entry {
    size: u64,
    kind: CacheEntryKind,
    pins: u32,
    last_use: u64,
}

/// An LRU cache over one worker's local disk.
#[derive(Clone, Debug)]
pub struct LocalCache {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: BTreeMap<CacheName, Entry>,
    /// High-water mark of `used`, for Fig 11 reporting.
    peak_used: u64,
    /// Lifetime insertions (survives `clear`), for cross-session accounting.
    insertions: u64,
    /// Lifetime evictions + clears of resident entries (survives `clear`).
    evictions: u64,
    /// Resident entries whose bytes no longer match their cachename
    /// checksum (chaos bitrot). Membership implies residency; the mark is
    /// dropped whenever the entry's bytes are replaced or leave the cache.
    corrupt: BTreeSet<CacheName>,
}

impl LocalCache {
    /// An empty cache over a disk of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LocalCache {
            capacity,
            used: 0,
            tick: 0,
            entries: BTreeMap::new(),
            peak_used: 0,
            insertions: 0,
            evictions: 0,
            corrupt: BTreeSet::new(),
        }
    }

    /// Disk capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The highest occupancy ever reached.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the named file is resident.
    pub fn contains(&self, name: CacheName) -> bool {
        self.entries.contains_key(&name)
    }

    /// Size of the named resident file, if present.
    pub fn size_of(&self, name: CacheName) -> Option<u64> {
        self.entries.get(&name).map(|e| e.size)
    }

    /// Record a use of the named file (bumps its LRU recency).
    /// Returns `false` if the file is not resident.
    pub fn touch(&mut self, name: CacheName) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&name) {
            Some(e) => {
                e.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// Insert a file, evicting unpinned entries in LRU order as needed.
    ///
    /// Returns the names evicted to make room (possibly empty). Re-inserting
    /// a resident name refreshes its recency; if the size changed the entry
    /// is resized (evicting as needed for growth).
    ///
    /// Fails with [`CacheError::WontFit`] if pinned entries prevent making
    /// room; the cache is left unchanged in that case.
    pub fn insert(
        &mut self,
        name: CacheName,
        size: u64,
        kind: CacheEntryKind,
    ) -> Result<Vec<CacheName>, CacheError> {
        self.tick += 1;
        let tick = self.tick;

        let existing_size = self.entries.get(&name).map(|e| e.size);
        let net_growth = size.saturating_sub(existing_size.unwrap_or(0));
        let free = self.capacity - self.used;

        let mut evicted = Vec::new();
        if net_growth > free {
            let mut need = net_growth - free;
            // Evict coldest unpinned entries (never the one being resized).
            let mut candidates: Vec<(u64, CacheName, u64)> = self
                .entries
                .iter()
                .filter(|(n, e)| e.pins == 0 && **n != name)
                .map(|(n, e)| (e.last_use, *n, e.size))
                .collect();
            candidates.sort_unstable();
            let reclaimable: u64 = candidates.iter().map(|&(_, _, s)| s).sum();
            if reclaimable < need {
                return Err(CacheError::WontFit {
                    needed: net_growth,
                    reclaimable: free + reclaimable,
                });
            }
            for (_, victim, vsize) in candidates {
                if need == 0 {
                    break;
                }
                self.entries.remove(&victim);
                self.corrupt.remove(&victim);
                self.used -= vsize;
                self.evictions += 1;
                need = need.saturating_sub(vsize);
                evicted.push(victim);
            }
        }

        self.corrupt.remove(&name);
        match self.entries.get_mut(&name) {
            Some(e) => {
                self.used = self.used - e.size + size;
                e.size = size;
                e.kind = kind;
                e.last_use = tick;
            }
            None => {
                self.entries.insert(
                    name,
                    Entry {
                        size,
                        kind,
                        pins: 0,
                        last_use: tick,
                    },
                );
                self.used += size;
                self.insertions += 1;
            }
        }
        self.peak_used = self.peak_used.max(self.used);
        Ok(evicted)
    }

    /// Pin a resident file so it cannot be evicted. Pins nest.
    pub fn pin(&mut self, name: CacheName) -> Result<(), CacheError> {
        let e = self.entries.get_mut(&name).ok_or(CacheError::Missing)?;
        e.pins += 1;
        Ok(())
    }

    /// Release one pin on a resident file.
    pub fn unpin(&mut self, name: CacheName) -> Result<(), CacheError> {
        let e = self.entries.get_mut(&name).ok_or(CacheError::Missing)?;
        debug_assert!(e.pins > 0, "unpin without matching pin");
        e.pins = e.pins.saturating_sub(1);
        Ok(())
    }

    /// True if the named file is resident and pinned.
    pub fn is_pinned(&self, name: CacheName) -> bool {
        self.entries.get(&name).is_some_and(|e| e.pins > 0)
    }

    /// Explicitly remove a file (e.g. the manager pruned it). Pinned files
    /// cannot be removed.
    pub fn remove(&mut self, name: CacheName) -> Result<u64, CacheError> {
        match self.entries.get(&name) {
            None => Err(CacheError::Missing),
            Some(e) if e.pins > 0 => Err(CacheError::WontFit {
                needed: 0,
                reclaimable: 0,
            }),
            Some(_) => {
                let e = self.entries.remove(&name).expect("checked above");
                self.corrupt.remove(&name);
                self.used -= e.size;
                self.evictions += 1;
                Ok(e.size)
            }
        }
    }

    /// Evict unpinned entries in LRU order until `used <= target` bytes.
    /// Returns the names evicted (possibly empty). Pinned entries are
    /// untouched, so `used` may remain above `target`; the caller decides
    /// whether that is an error (a facility quota breach, say).
    pub fn evict_to(&mut self, target: u64) -> Vec<CacheName> {
        let mut evicted = Vec::new();
        if self.used <= target {
            return evicted;
        }
        let mut candidates: Vec<(u64, CacheName, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .map(|(n, e)| (e.last_use, *n, e.size))
            .collect();
        candidates.sort_unstable();
        for (_, victim, vsize) in candidates {
            if self.used <= target {
                break;
            }
            self.entries.remove(&victim);
            self.corrupt.remove(&victim);
            self.used -= vsize;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Release every pin on every entry. A facility uses this at session
    /// hand-off: run-lifetime pins (retention, transfers) are meaningless
    /// once the run that took them is over, but the bytes stay resident.
    pub fn clear_pins(&mut self) {
        for e in self.entries.values_mut() {
            e.pins = 0;
        }
    }

    /// Drop everything (worker preempted / restarted).
    pub fn clear(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
        self.corrupt.clear();
        self.used = 0;
    }

    /// Mark a resident entry's bytes as corrupted (chaos bitrot). Returns
    /// `false` when the name is not resident. The mark survives until the
    /// entry's bytes change: re-[`insert`]ing the name clears it, as does
    /// any form of removal.
    ///
    /// [`insert`]: LocalCache::insert
    pub fn mark_corrupt(&mut self, name: CacheName) -> bool {
        if self.entries.contains_key(&name) {
            self.corrupt.insert(name);
            true
        } else {
            false
        }
    }

    /// True when the resident entry is marked corrupt: a reader comparing
    /// the bytes' checksum against the cachename would detect a mismatch.
    pub fn is_corrupt(&self, name: CacheName) -> bool {
        self.corrupt.contains(&name)
    }

    /// Number of currently-corrupt resident entries.
    pub fn corrupt_count(&self) -> usize {
        self.corrupt.len()
    }

    /// Lifetime count of distinct-entry insertions; survives [`clear`].
    ///
    /// [`clear`]: LocalCache::clear
    pub fn lifetime_insertions(&self) -> u64 {
        self.insertions
    }

    /// Lifetime count of entries removed by eviction, [`remove`], or
    /// [`clear`]; survives [`clear`].
    ///
    /// [`remove`]: LocalCache::remove
    /// [`clear`]: LocalCache::clear
    pub fn lifetime_evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate resident `(name, size, kind)` triples in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (CacheName, u64, CacheEntryKind)> + '_ {
        self.entries.iter().map(|(n, e)| (*n, e.size, e.kind))
    }

    /// Total bytes of resident entries of the given kind.
    pub fn used_by_kind(&self, kind: CacheEntryKind) -> u64 {
        self.entries
            .values()
            .filter(|e| e.kind == kind)
            .map(|e| e.size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(i: u32) -> CacheName {
        CacheName::for_dataset_file("t", i)
    }

    #[test]
    fn corruption_marks_follow_the_bytes() {
        let mut c = LocalCache::new(1000);
        assert!(!c.mark_corrupt(name(1)), "absent entries cannot rot");
        c.insert(name(1), 400, CacheEntryKind::Input).unwrap();
        c.insert(name(2), 400, CacheEntryKind::Input).unwrap();
        assert!(c.mark_corrupt(name(1)));
        assert!(c.is_corrupt(name(1)));
        assert!(!c.is_corrupt(name(2)));
        assert_eq!(c.corrupt_count(), 1);
        // Re-staging the file replaces the bytes: mark gone.
        c.insert(name(1), 400, CacheEntryKind::Input).unwrap();
        assert!(!c.is_corrupt(name(1)));
        // Removal in any form drops the mark with the entry.
        c.mark_corrupt(name(2));
        c.remove(name(2)).unwrap();
        assert!(!c.is_corrupt(name(2)));
        c.mark_corrupt(name(1));
        c.clear();
        assert_eq!(c.corrupt_count(), 0);
        // Eviction drops marks too.
        c.insert(name(3), 600, CacheEntryKind::Input).unwrap();
        c.mark_corrupt(name(3));
        c.insert(name(4), 600, CacheEntryKind::Input).unwrap();
        assert!(!c.contains(name(3)));
        assert_eq!(c.corrupt_count(), 0);
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = LocalCache::new(1000);
        assert_eq!(
            c.insert(name(1), 400, CacheEntryKind::Input).unwrap(),
            vec![]
        );
        assert!(c.contains(name(1)));
        assert_eq!(c.size_of(name(1)), Some(400));
        assert_eq!(c.used(), 400);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_lru_first() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 400, CacheEntryKind::Input).unwrap();
        c.insert(name(2), 400, CacheEntryKind::Input).unwrap();
        c.touch(name(1)); // 2 is now coldest
        let evicted = c.insert(name(3), 400, CacheEntryKind::Input).unwrap();
        assert_eq!(evicted, vec![name(2)]);
        assert!(c.contains(name(1)));
        assert!(!c.contains(name(2)));
        assert_eq!(c.used(), 800);
    }

    #[test]
    fn evicts_multiple_if_needed() {
        let mut c = LocalCache::new(1000);
        for i in 0..5 {
            c.insert(name(i), 200, CacheEntryKind::Input).unwrap();
        }
        let evicted = c
            .insert(name(9), 900, CacheEntryKind::Intermediate)
            .unwrap();
        // need 900 bytes, free 0, victims are 200 bytes each -> 5 evictions
        assert_eq!(evicted.len(), 5);
        assert_eq!(c.used(), 900);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 600, CacheEntryKind::Input).unwrap();
        c.pin(name(1)).unwrap();
        c.insert(name(2), 300, CacheEntryKind::Input).unwrap();
        // Needs 500: only name(2) (300) is reclaimable -> WontFit.
        let err = c.insert(name(3), 500, CacheEntryKind::Input).unwrap_err();
        assert_eq!(
            err,
            CacheError::WontFit {
                needed: 500,
                reclaimable: 400
            }
        );
        // Cache unchanged on failure.
        assert!(c.contains(name(1)));
        assert!(c.contains(name(2)));
        assert_eq!(c.used(), 900);
    }

    #[test]
    fn unpin_restores_evictability() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 600, CacheEntryKind::Input).unwrap();
        c.pin(name(1)).unwrap();
        c.unpin(name(1)).unwrap();
        let evicted = c.insert(name(2), 800, CacheEntryKind::Input).unwrap();
        assert_eq!(evicted, vec![name(1)]);
    }

    #[test]
    fn nested_pins() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 500, CacheEntryKind::Input).unwrap();
        c.pin(name(1)).unwrap();
        c.pin(name(1)).unwrap();
        c.unpin(name(1)).unwrap();
        assert!(c.is_pinned(name(1)));
        c.unpin(name(1)).unwrap();
        assert!(!c.is_pinned(name(1)));
    }

    #[test]
    fn oversized_file_wont_fit() {
        let mut c = LocalCache::new(100);
        let err = c.insert(name(1), 200, CacheEntryKind::Input).unwrap_err();
        assert!(matches!(err, CacheError::WontFit { .. }));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_resizes_in_place() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 300, CacheEntryKind::Input).unwrap();
        c.insert(name(1), 500, CacheEntryKind::Input).unwrap();
        assert_eq!(c.used(), 500);
        assert_eq!(c.len(), 1);
        c.insert(name(1), 100, CacheEntryKind::Input).unwrap();
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn reinsert_never_evicts_itself() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 900, CacheEntryKind::Input).unwrap();
        // Growing 900 -> 1000 must not evict name(1) to make room.
        let evicted = c.insert(name(1), 1000, CacheEntryKind::Input).unwrap();
        assert!(evicted.is_empty());
        assert_eq!(c.used(), 1000);
    }

    #[test]
    fn remove_frees_space_but_not_pinned() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 500, CacheEntryKind::Intermediate)
            .unwrap();
        c.pin(name(1)).unwrap();
        assert!(c.remove(name(1)).is_err());
        c.unpin(name(1)).unwrap();
        assert_eq!(c.remove(name(1)).unwrap(), 500);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn remove_missing_errors() {
        let mut c = LocalCache::new(1000);
        assert_eq!(c.remove(name(1)), Err(CacheError::Missing));
    }

    #[test]
    fn peak_used_tracks_high_water() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 700, CacheEntryKind::Input).unwrap();
        c.remove(name(1)).unwrap();
        c.insert(name(2), 100, CacheEntryKind::Input).unwrap();
        assert_eq!(c.peak_used(), 700);
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 500, CacheEntryKind::Library).unwrap();
        c.pin(name(1)).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn used_by_kind_partitions() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 100, CacheEntryKind::Input).unwrap();
        c.insert(name(2), 200, CacheEntryKind::Intermediate)
            .unwrap();
        c.insert(name(3), 300, CacheEntryKind::Library).unwrap();
        assert_eq!(c.used_by_kind(CacheEntryKind::Input), 100);
        assert_eq!(c.used_by_kind(CacheEntryKind::Intermediate), 200);
        assert_eq!(c.used_by_kind(CacheEntryKind::Library), 300);
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut c = LocalCache::new(10);
        assert!(!c.touch(name(1)));
    }

    #[test]
    fn evict_to_sheds_coldest_until_under_target() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 300, CacheEntryKind::Intermediate)
            .unwrap();
        c.insert(name(2), 300, CacheEntryKind::Intermediate)
            .unwrap();
        c.insert(name(3), 300, CacheEntryKind::Intermediate)
            .unwrap();
        c.touch(name(1)); // 2 is coldest
        let evicted = c.evict_to(600);
        assert_eq!(evicted, vec![name(2)]);
        assert_eq!(c.used(), 600);
        assert!(c.evict_to(600).is_empty(), "already at target");
    }

    #[test]
    fn evict_to_skips_pinned_and_may_miss_target() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 600, CacheEntryKind::Intermediate)
            .unwrap();
        c.insert(name(2), 200, CacheEntryKind::Intermediate)
            .unwrap();
        c.pin(name(1)).unwrap();
        let evicted = c.evict_to(100);
        assert_eq!(evicted, vec![name(2)]);
        assert_eq!(c.used(), 600, "pinned bytes stay above target");
    }

    #[test]
    fn clear_pins_makes_everything_evictable() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 500, CacheEntryKind::Intermediate)
            .unwrap();
        c.pin(name(1)).unwrap();
        c.pin(name(1)).unwrap();
        c.clear_pins();
        assert!(!c.is_pinned(name(1)));
        assert_eq!(c.evict_to(0), vec![name(1)]);
    }

    #[test]
    fn lifetime_counters_survive_clear() {
        let mut c = LocalCache::new(1000);
        c.insert(name(1), 400, CacheEntryKind::Input).unwrap();
        c.insert(name(2), 400, CacheEntryKind::Input).unwrap();
        c.insert(name(1), 500, CacheEntryKind::Input).unwrap(); // resize, not an insertion
        assert_eq!(c.lifetime_insertions(), 2);
        c.insert(name(3), 900, CacheEntryKind::Input).unwrap(); // evicts both
        assert_eq!(c.lifetime_evictions(), 2);
        c.clear(); // one resident entry dropped
        assert_eq!(c.lifetime_evictions(), 3);
        assert_eq!(c.lifetime_insertions(), 3);
        assert_eq!(c.used(), 0);
    }
}
