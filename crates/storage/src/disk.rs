//! Per-device disk performance profiles.
//!
//! Used for worker-local disks (task sandbox I/O, cache hits) and as the
//! building block of the shared-filesystem presets. A transfer of `b` bytes
//! costs `access_latency + b / bandwidth`.

use vine_simcore::SimDur;

/// Performance parameters of one storage device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskProfile {
    /// Human-readable device class.
    pub name: &'static str,
    /// Fixed cost to begin an access (seek + request overhead), seconds.
    pub access_latency_s: f64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
}

impl DiskProfile {
    /// Commodity 7.2k spinning disk (the HDFS cluster's media): ~10 ms
    /// seek, ~120 MB/s streaming.
    pub fn spinning_hdd() -> Self {
        DiskProfile {
            name: "hdd",
            access_latency_s: 10e-3,
            read_bw: 120e6,
            write_bw: 110e6,
        }
    }

    /// Datacenter NVMe SSD (the VAST cluster's media): ~80 µs access,
    /// multi-GB/s streaming.
    pub fn nvme() -> Self {
        DiskProfile {
            name: "nvme",
            access_latency_s: 80e-6,
            read_bw: 2.5e9,
            write_bw: 1.8e9,
        }
    }

    /// Typical campus-cluster worker scratch disk (SATA SSD class).
    pub fn worker_scratch() -> Self {
        DiskProfile {
            name: "worker-scratch",
            access_latency_s: 300e-6,
            read_bw: 500e6,
            write_bw: 400e6,
        }
    }

    /// Time to read `bytes` sequentially.
    pub fn read_time(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(self.access_latency_s + bytes as f64 / self.read_bw)
    }

    /// Time to write `bytes` sequentially.
    pub fn write_time(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(self.access_latency_s + bytes as f64 / self.write_bw)
    }

    /// Time for `n` small metadata-ish accesses (directory walks, stat
    /// calls, byte-code probes): latency-bound, bandwidth ignored.
    pub fn metadata_ops(&self, n: u64) -> SimDur {
        SimDur::from_secs_f64(self.access_latency_s * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_simcore::units::{GB, MB};

    #[test]
    fn hdd_read_is_latency_plus_stream() {
        let d = DiskProfile::spinning_hdd();
        // 120 MB at 120 MB/s = 1 s, plus 10 ms seek.
        let t = d.read_time(120 * MB);
        assert!((t.as_secs_f64() - 1.010).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn nvme_much_faster_than_hdd() {
        let hdd = DiskProfile::spinning_hdd();
        let nvme = DiskProfile::nvme();
        let b = GB;
        assert!(nvme.read_time(b) < hdd.read_time(b) / 10);
        assert!(nvme.metadata_ops(100) < hdd.metadata_ops(100) / 50);
    }

    #[test]
    fn zero_byte_access_costs_latency_only() {
        let d = DiskProfile::nvme();
        assert_eq!(d.read_time(0), SimDur::from_secs_f64(80e-6));
    }

    #[test]
    fn write_uses_write_bandwidth() {
        let d = DiskProfile::worker_scratch();
        assert!(d.write_time(GB) > d.read_time(GB));
    }

    #[test]
    fn metadata_ops_scale_linearly() {
        let d = DiskProfile::spinning_hdd();
        assert_eq!(d.metadata_ops(10), SimDur::from_millis(100));
    }
}
