//! Content-derived file naming (TaskVine "cachenames", §IV-B).
//!
//! TaskVine retains files on worker-local disks and moves them between
//! peers, so a file must have the same identity everywhere regardless of
//! the path the application knows it by. TaskVine derives a unique
//! *cachename* from file metadata and content; we model that as a 128-bit
//! hash over a namespace plus arbitrary parts (producer task signature,
//! logical name, partition index, ...). Cachenames may refer to single
//! files or to directory trees treated as atomic units.

use std::fmt;

/// A content/metadata-derived, location-independent file identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheName(u128);

impl CacheName {
    /// Derive a cachename from a namespace and ordered byte parts.
    ///
    /// Equal `(namespace, parts)` always produce equal names; parts are
    /// length-delimited, so `["ab","c"]` and `["a","bc"]` differ.
    pub fn derive(namespace: &str, parts: &[&[u8]]) -> Self {
        let mut hi = fnv1a64(0xcbf2_9ce4_8422_2325, namespace.as_bytes());
        let mut lo = fnv1a64(0x84222325_cbf29ce4, namespace.as_bytes());
        for part in parts {
            let len = (part.len() as u64).to_le_bytes();
            hi = fnv1a64(hi ^ 0x9e37, &len);
            hi = fnv1a64(hi, part);
            lo = fnv1a64(lo ^ 0x79b9, &len);
            lo = fnv1a64(lo, part);
        }
        CacheName(((hi as u128) << 64) | lo as u128)
    }

    /// Derive a cachename for a task's numbered output.
    pub fn for_task_output(task_signature: &str, output_index: u32) -> Self {
        CacheName::derive(
            "task-output",
            &[task_signature.as_bytes(), &output_index.to_le_bytes()],
        )
    }

    /// Derive a cachename for an input dataset file.
    pub fn for_dataset_file(dataset: &str, file_index: u32) -> Self {
        CacheName::derive(
            "dataset-file",
            &[dataset.as_bytes(), &file_index.to_le_bytes()],
        )
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Debug for CacheName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cachename:{:032x}", self.0)
    }
}

impl fmt::Display for CacheName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", (self.0 >> 64) as u64 ^ self.0 as u64)
    }
}

fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = CacheName::derive("ns", &[b"hello", b"world"]);
        let b = CacheName::derive("ns", &[b"hello", b"world"]);
        assert_eq!(a, b);
    }

    #[test]
    fn namespace_separates() {
        assert_ne!(
            CacheName::derive("ns1", &[b"x"]),
            CacheName::derive("ns2", &[b"x"])
        );
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(
            CacheName::derive("ns", &[b"ab", b"c"]),
            CacheName::derive("ns", &[b"a", b"bc"])
        );
        assert_ne!(
            CacheName::derive("ns", &[b"abc"]),
            CacheName::derive("ns", &[b"abc", b""])
        );
    }

    #[test]
    fn task_output_names_unique_per_index() {
        let a = CacheName::for_task_output("proc-partition-17", 0);
        let b = CacheName::for_task_output("proc-partition-17", 1);
        let c = CacheName::for_task_output("proc-partition-18", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_file_names_stable() {
        assert_eq!(
            CacheName::for_dataset_file("SingleMu", 3),
            CacheName::for_dataset_file("SingleMu", 3)
        );
    }

    #[test]
    fn no_collisions_over_many_names() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for ds in 0..50u32 {
            for f in 0..200u32 {
                let name = CacheName::for_dataset_file(&format!("ds{ds}"), f);
                assert!(seen.insert(name), "collision at ds{ds} file {f}");
            }
        }
    }

    #[test]
    fn debug_format_is_hex() {
        let n = CacheName::derive("ns", &[b"x"]);
        assert!(format!("{n:?}").starts_with("cachename:"));
    }
}
