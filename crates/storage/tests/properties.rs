//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use vine_storage::{CacheEntryKind, CacheName, LocalCache};

/// Random cache operations.
#[derive(Clone, Debug)]
enum Op {
    Insert { id: u32, size: u64 },
    Touch { id: u32 },
    Pin { id: u32 },
    Unpin { id: u32 },
    Remove { id: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..20, 1u64..400).prop_map(|(id, size)| Op::Insert { id, size }),
        (0u32..20).prop_map(|id| Op::Touch { id }),
        (0u32..20).prop_map(|id| Op::Pin { id }),
        (0u32..20).prop_map(|id| Op::Unpin { id }),
        (0u32..20).prop_map(|id| Op::Remove { id }),
    ]
}

proptest! {
    /// Under any operation sequence the cache never exceeds capacity, its
    /// `used()` equals the sum of resident sizes, and pinned entries are
    /// never evicted.
    #[test]
    fn cache_invariants(ops in proptest::collection::vec(op_strategy(), 0..300)) {
        let capacity = 1000u64;
        let mut cache = LocalCache::new(capacity);
        let mut pins: std::collections::HashMap<u32, u32> = Default::default();

        for op in ops {
            match op {
                Op::Insert { id, size } => {
                    let name = CacheName::for_dataset_file("p", id);
                    let pinned_before: Vec<u32> = pins
                        .iter()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(&i, _)| i)
                        .collect();
                    match cache.insert(name, size, CacheEntryKind::Input) {
                        Ok(evicted) => {
                            for v in &evicted {
                                // No pinned entry may be evicted.
                                for &p in &pinned_before {
                                    let pname = CacheName::for_dataset_file("p", p);
                                    prop_assert_ne!(*v, pname, "evicted pinned entry {}", p);
                                }
                            }
                        }
                        Err(_) => { /* WontFit is legal; state unchanged */ }
                    }
                }
                Op::Touch { id } => {
                    cache.touch(CacheName::for_dataset_file("p", id));
                }
                Op::Pin { id } => {
                    let name = CacheName::for_dataset_file("p", id);
                    if cache.pin(name).is_ok() {
                        *pins.entry(id).or_insert(0) += 1;
                    }
                }
                Op::Unpin { id } => {
                    let entry = pins.entry(id).or_insert(0);
                    if *entry > 0 {
                        let name = CacheName::for_dataset_file("p", id);
                        prop_assert!(cache.unpin(name).is_ok());
                        *entry -= 1;
                    }
                }
                Op::Remove { id } => {
                    let name = CacheName::for_dataset_file("p", id);
                    let was_pinned = cache.is_pinned(name);
                    let existed = cache.contains(name);
                    let r = cache.remove(name);
                    if existed && !was_pinned {
                        prop_assert!(r.is_ok());
                        pins.remove(&id);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }

            // Global invariants after every op.
            prop_assert!(cache.used() <= capacity, "over capacity");
            let sum: u64 = cache.iter().map(|(_, s, _)| s).sum();
            prop_assert_eq!(cache.used(), sum, "used() out of sync with entries");
            prop_assert!(cache.peak_used() >= cache.used());
            // Every entry the model thinks is pinned must still be resident.
            for (&id, &count) in &pins {
                if count > 0 {
                    let name = CacheName::for_dataset_file("p", id);
                    prop_assert!(cache.contains(name), "pinned {} missing", id);
                    prop_assert!(cache.is_pinned(name));
                }
            }
        }
    }

    /// Cachenames are collision-free across distinct (dataset, index) pairs
    /// in practice-sized samples.
    #[test]
    fn cachenames_injective(pairs in proptest::collection::hash_set((0u32..1000, 0u32..1000), 0..200)) {
        let names: std::collections::HashSet<_> = pairs
            .iter()
            .map(|&(d, f)| CacheName::for_dataset_file(&format!("d{d}"), f))
            .collect();
        prop_assert_eq!(names.len(), pairs.len());
    }

    /// Insert of a fitting file into an unpinned cache always succeeds.
    #[test]
    fn fitting_insert_succeeds(
        sizes in proptest::collection::vec(1u64..500, 1..50),
        new_size in 1u64..1000,
    ) {
        let mut cache = LocalCache::new(1000);
        for (i, &s) in sizes.iter().enumerate() {
            if s <= 1000 {
                let _ = cache.insert(
                    CacheName::for_dataset_file("x", i as u32),
                    s,
                    CacheEntryKind::Intermediate,
                );
            }
        }
        // Nothing pinned, new_size <= capacity: must succeed.
        let r = cache.insert(
            CacheName::for_dataset_file("y", 0),
            new_size,
            CacheEntryKind::Intermediate,
        );
        prop_assert!(r.is_ok());
    }
}
