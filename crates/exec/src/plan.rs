//! Execution plans: the concrete task list the runtime executes.
//!
//! Mirrors the Coffea → Dask translation (§II-B): one `Process` task per
//! dataset chunk, then a bounded-arity accumulation tree per dataset, then
//! a final cross-dataset merge. The plan is a [`vine_dag::TaskGraph`] whose
//! files stand for in-memory [`vine_data::HistogramSet`] values, so the
//! runtime can reuse [`vine_dag::ReadyTracker`] for scheduling and
//! bookkeeping.

use vine_dag::rewrite::add_tree_reduce;
use vine_dag::{FileId, TaskGraph, TaskId, TaskKind};
use vine_data::{Chunk, Dataset};

/// What a task does, resolved from the graph at execution time.
#[derive(Clone, Debug)]
pub enum TaskAction {
    /// Materialize and process one chunk of one dataset.
    Process {
        /// Dataset index in the plan's dataset list.
        dataset: usize,
        /// The chunk to materialize.
        chunk: Chunk,
    },
    /// Merge previously-produced histogram sets.
    Accumulate,
}

/// A runnable plan over concrete datasets.
pub struct ExecPlan {
    /// The dependency graph (files = histogram sets).
    pub graph: TaskGraph,
    /// Per-task actions, indexed by `TaskId`.
    pub actions: Vec<TaskAction>,
    /// The output file of each dataset's reduction, in dataset order.
    pub dataset_results: Vec<FileId>,
    /// The final, cross-dataset result file.
    pub final_result: FileId,
}

impl ExecPlan {
    /// Build a plan: process every chunk of every dataset, reduce each
    /// dataset with an `arity`-ary tree, then merge the per-dataset
    /// results with one final tree.
    ///
    /// # Panics
    /// If `datasets` is empty or `arity < 2`.
    pub fn build(datasets: &[Dataset], arity: usize) -> Self {
        assert!(!datasets.is_empty(), "need at least one dataset");
        assert!(arity >= 2, "reduction arity must be at least 2");
        let mut graph = TaskGraph::new();
        let mut actions = Vec::new();
        let mut dataset_results = Vec::with_capacity(datasets.len());

        for (di, ds) in datasets.iter().enumerate() {
            let mut partials = Vec::new();
            for (ci, chunk) in ds.chunks().enumerate() {
                let input = graph.add_external_file(format!("{}.chunk{ci}", ds.name), chunk.bytes);
                let (tid, outs) = graph.add_task(
                    format!("{}.process{ci}", ds.name),
                    TaskKind::Process,
                    vec![input],
                    &[1],
                    1.0,
                );
                debug_assert_eq!(tid.0 as usize, actions.len());
                actions.push(TaskAction::Process {
                    dataset: di,
                    chunk: *chunk,
                });
                partials.push(outs[0]);
            }
            let before = graph.task_count();
            let result = add_tree_reduce(
                &mut graph,
                &format!("{}.reduce", ds.name),
                &partials,
                arity,
                1,
                0.1,
            );
            for _ in before..graph.task_count() {
                actions.push(TaskAction::Accumulate);
            }
            dataset_results.push(result);
        }

        let before = graph.task_count();
        let final_result =
            add_tree_reduce(&mut graph, "final.merge", &dataset_results, arity, 1, 0.1);
        for _ in before..graph.task_count() {
            actions.push(TaskAction::Accumulate);
        }

        // Pre-flight: a plan the builder emits must lint clean on the
        // structural (G) family — anything else is a bug in this builder,
        // not in the caller's inputs.
        let report = vine_lint::lint_graph(&graph);
        assert!(
            !report.has_errors(),
            "ExecPlan::build produced a graph with lint errors:\n{}",
            report.to_text()
        );
        debug_assert_eq!(actions.len(), graph.task_count());
        ExecPlan {
            graph,
            actions,
            dataset_results,
            final_result,
        }
    }

    /// Number of tasks in the plan.
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// The action of one task.
    pub fn action(&self, t: TaskId) -> &TaskAction {
        &self.actions[t.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_simcore::units::{KB, MB};

    fn datasets(n: usize) -> Vec<Dataset> {
        (0..n)
            .map(|i| Dataset::synthesize(format!("ds{i}"), MB, KB, 250, 2))
            .collect()
    }

    #[test]
    fn plan_covers_every_chunk() {
        let dss = datasets(3);
        let total_chunks: usize = dss.iter().map(|d| d.chunk_count()).sum();
        let plan = ExecPlan::build(&dss, 2);
        let processes = plan
            .actions
            .iter()
            .filter(|a| matches!(a, TaskAction::Process { .. }))
            .count();
        assert_eq!(processes, total_chunks);
        assert_eq!(plan.dataset_results.len(), 3);
        assert!(plan.graph.validate().is_ok());
    }

    #[test]
    fn single_dataset_final_is_dataset_result() {
        let dss = datasets(1);
        let plan = ExecPlan::build(&dss, 4);
        assert_eq!(plan.final_result, plan.dataset_results[0]);
    }

    #[test]
    fn actions_align_with_task_ids() {
        let dss = datasets(2);
        let plan = ExecPlan::build(&dss, 2);
        for t in plan.graph.tasks() {
            match (t.kind, plan.action(t.id)) {
                (TaskKind::Process, TaskAction::Process { .. }) => {}
                (TaskKind::Accumulate, TaskAction::Accumulate) => {}
                (k, a) => panic!("task {:?} kind {k:?} has action {a:?}", t.id),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one dataset")]
    fn empty_datasets_panic() {
        ExecPlan::build(&[], 2);
    }
}
