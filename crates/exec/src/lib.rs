#![deny(unsafe_code)]

//! # vine-exec — a real threaded manager/worker runtime
//!
//! The simulation in `vine-core` reproduces the paper's cluster-scale
//! numbers; this crate executes the *same analyses for real* on local
//! threads, with the same architecture and the same execution-paradigm
//! distinction the paper evaluates (§IV-B):
//!
//! * a **manager** thread owns the task graph, dispatches ready tasks over
//!   channels, stores produced partial results, and feeds accumulations;
//! * **worker** threads execute tasks. In [`ExecMode::Standard`] every
//!   task pays the "deserialize the function and load its libraries" cost
//!   by rebuilding the [`library::LibraryState`] from scratch — the
//!   in-process equivalent of starting an interpreter and importing numpy.
//!   In [`ExecMode::Serverless`] each worker builds the library once (the
//!   LibraryTask with hoisted imports) and every invocation reuses it;
//! * results are histogram sets whose merge is associative, so the runtime
//!   accumulates them through the same bounded-arity trees as the
//!   simulated DAGs — and must produce **bit-identical physics** to a
//!   sequential reference run, regardless of mode or thread count.

pub mod library;
pub mod plan;
pub mod runtime;

pub use library::LibraryState;
pub use plan::ExecPlan;
pub use runtime::{ExecChaos, ExecMode, ExecReport, Executor};
