//! The threaded manager/worker runtime.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use vine_analysis::Processor;
use vine_dag::{FileId, ReadyTracker, TaskId};
use vine_data::{Dataset, HistogramSet};
use vine_obs::{
    Clock, CriticalPath, Phase, PhaseBreakdown, RunDigest, RunObs, TaskAttribution, WallClock,
};

use crate::library::LibraryState;
use crate::plan::{ExecPlan, TaskAction};

/// Execution paradigm (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Conventional tasks: every execution rebuilds the library from
    /// scratch (the interpreter-start + import cost).
    Standard,
    /// Serverless: each worker instantiates the library once (a
    /// LibraryTask with hoisted imports) and invocations reuse it.
    Serverless,
}

/// Deterministic transient-failure injection for the threaded runtime.
///
/// Whether an attempt fails depends only on `(seed, task, attempt)` — a
/// splitmix64 hash, no shared RNG state — so the fault schedule, the
/// per-task retry counts, and the physics result are all **independent
/// of thread count**: the same run on 1 thread and on 16 threads injects
/// exactly the same failures. An attempt past `max_retries` always runs
/// clean, so a finite chaos spec can never wedge the runtime.
#[derive(Clone, Copy, Debug)]
pub struct ExecChaos {
    /// Seed for the doom hash.
    pub seed: u64,
    /// Per-attempt failure probability in `[0, 1)`.
    pub failure_prob: f64,
    /// Attempts beyond this index are never doomed (attempts are
    /// numbered from 1).
    pub max_retries: u32,
}

impl ExecChaos {
    /// A light default: 10% per-attempt failures, three retries.
    pub fn light(seed: u64) -> Self {
        ExecChaos {
            seed,
            failure_prob: 0.1,
            max_retries: 3,
        }
    }

    /// Does this attempt of this task fail?
    pub fn dooms(&self, task: TaskId, attempt: u32) -> bool {
        if attempt > self.max_retries {
            return false;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((task.0 as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        u < self.failure_prob
    }
}

/// The runtime's configuration.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    /// Worker threads (task slots).
    pub threads: usize,
    /// Execution paradigm.
    pub mode: ExecMode,
    /// Library size (see [`LibraryState::build`]).
    pub import_work: usize,
    /// Accumulation-tree arity.
    pub arity: usize,
    /// Record per-task phase attributions and a run digest
    /// ([`ExecReport::obs`]). Off by default; workers then take no
    /// timestamps beyond the existing per-task stopwatch.
    pub obs: bool,
    /// Deterministic transient-failure injection. `None` (the default)
    /// injects nothing and leaves the hot path untouched.
    pub chaos: Option<ExecChaos>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            mode: ExecMode::Serverless,
            import_work: LibraryState::DEFAULT_WORK,
            arity: 8,
            obs: false,
            chaos: None,
        }
    }
}

/// What one run produced.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// The final cross-dataset histogram set.
    pub final_result: HistogramSet,
    /// Per-dataset results, in dataset order.
    pub dataset_results: Vec<HistogramSet>,
    /// Wall-clock makespan of the run.
    pub makespan: Duration,
    /// Per-task execution durations, in completion order.
    pub task_times: Vec<Duration>,
    /// How many times the library was built.
    pub library_builds: u64,
    /// Tasks executed.
    pub tasks_executed: u64,
    /// Attempts failed by [`Executor::chaos`] and retried. Deterministic
    /// for a given `(workload, chaos)` pair regardless of thread count.
    pub transient_failures: u64,
    /// Events processed (from the physics, as a cross-check).
    pub events_processed: u64,
    /// Tasks executed by each worker thread.
    pub per_worker_tasks: Vec<u64>,
    /// Size of the final result when serialized with the wire codec.
    pub result_bytes: u64,
    /// Per-task phase attributions and the run digest, when
    /// [`Executor::obs`] was on. Phases are wall-clock microseconds from
    /// the same [`WallClock`] on every thread, so the attribution
    /// invariant (phases sum to wall time exactly) holds here too.
    pub obs: Option<RunObs>,
}

impl ExecReport {
    /// Mean task execution time.
    pub fn mean_task_time(&self) -> Duration {
        if self.task_times.is_empty() {
            Duration::ZERO
        } else {
            self.task_times.iter().sum::<Duration>() / self.task_times.len() as u32
        }
    }
}

struct TaskMsg {
    task: TaskId,
    action: TaskAction,
    inputs: Vec<Arc<HistogramSet>>,
    /// Attempt number, from 1; incremented on each chaos retry.
    attempt: u32,
    /// Dispatch timestamp (µs on the shared run clock) — the execution's
    /// attribution starts here.
    sent_us: u64,
}

struct DoneMsg {
    task: TaskId,
    worker: usize,
    /// `None` when the attempt was doomed by chaos — the manager retries.
    output: Option<Arc<HistogramSet>>,
    attempt: u32,
    elapsed: Duration,
    built_library: bool,
    attribution: Option<TaskAttribution>,
}

impl Executor {
    /// Execute `processor` over `datasets` and return the report.
    ///
    /// The result is **independent of thread count and execution mode**:
    /// accumulation order is fixed by the plan, not by completion timing.
    pub fn run<P: Processor + ?Sized>(&self, processor: &P, datasets: &[Dataset]) -> ExecReport {
        let threads = self.threads.max(1);
        let plan = ExecPlan::build(datasets, self.arity.max(2));
        let mut tracker = ReadyTracker::new(&plan.graph);
        let mut storage: BTreeMap<FileId, Arc<HistogramSet>> = BTreeMap::new();
        let mut task_times = Vec::with_capacity(plan.task_count());
        let mut library_builds = 0u64;
        let mut transient_failures = 0u64;
        let mut attributions: Vec<TaskAttribution> = Vec::new();

        let started = Instant::now();
        // One monotonic clock shared by the manager and every worker, so
        // cross-thread timestamps (dispatch → receipt) are comparable.
        let clock = WallClock::start();
        let (task_tx, task_rx) = channel::unbounded::<TaskMsg>();
        let (done_tx, done_rx) = channel::unbounded::<DoneMsg>();

        let mut per_worker_tasks = vec![0u64; threads];
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let mode = self.mode;
                let import_work = self.import_work;
                let obs = self.obs;
                let chaos = self.chaos;
                let clock = &clock;
                scope.spawn(move || {
                    worker_loop(
                        worker,
                        task_rx,
                        done_tx,
                        mode,
                        import_work,
                        obs,
                        chaos,
                        clock,
                        processor,
                        datasets,
                    )
                });
            }
            drop(task_rx);
            drop(done_tx);

            let send =
                |task: TaskId, attempt: u32, storage: &BTreeMap<FileId, Arc<HistogramSet>>| {
                    let inputs = plan
                        .graph
                        .task(task)
                        .inputs
                        .iter()
                        .filter_map(|f| storage.get(f).cloned())
                        .collect();
                    task_tx
                        .send(TaskMsg {
                            task,
                            action: plan.action(task).clone(),
                            inputs,
                            attempt,
                            sent_us: clock.now_us(),
                        })
                        .expect("workers alive");
                };
            // Prime the pipeline with every initially-ready task.
            let dispatch =
                |tracker: &mut ReadyTracker, storage: &BTreeMap<FileId, Arc<HistogramSet>>| {
                    while let Some(task) = tracker.pop_ready() {
                        send(task, 1, storage);
                    }
                };
            dispatch(&mut tracker, &storage);

            while !tracker.is_complete() {
                let done = done_rx.recv().expect("workers alive while tasks pending");
                let Some(output) = done.output else {
                    // Chaos killed the attempt: the task is still Running
                    // in the tracker; just resend it with the next
                    // attempt number. `ExecChaos::dooms` guarantees an
                    // attempt past `max_retries` runs clean.
                    transient_failures += 1;
                    send(done.task, done.attempt + 1, &storage);
                    continue;
                };
                for &f in &plan.graph.task(done.task).outputs {
                    storage.insert(f, output.clone());
                }
                task_times.push(done.elapsed);
                per_worker_tasks[done.worker] += 1;
                if done.built_library {
                    library_builds += 1;
                }
                if let Some(a) = done.attribution {
                    attributions.push(a);
                }
                tracker.mark_done(done.task);
                dispatch(&mut tracker, &storage);
            }
            drop(task_tx); // workers drain and exit
        });

        let final_result = storage
            .get(&plan.final_result)
            .expect("final result produced")
            .as_ref()
            .clone();
        let dataset_results = plan
            .dataset_results
            .iter()
            .map(|f| {
                storage
                    .get(f)
                    .expect("dataset result produced")
                    .as_ref()
                    .clone()
            })
            .collect();
        // In serverless mode each worker built the library once at startup.
        if self.mode == ExecMode::Serverless {
            library_builds += threads as u64;
        }
        let result_bytes = vine_data::encode_histogram_set(&final_result).len() as u64;
        let makespan = started.elapsed();
        let obs = if self.obs {
            // Critical-path weights: each task ran exactly once here (no
            // failures in the threaded runtime).
            let mut walls = vec![0u64; plan.graph.task_count()];
            for a in &attributions {
                walls[a.task as usize] = a.wall_us();
            }
            let cp = CriticalPath::compute(&plan.graph, &walls);
            let label = format!("exec-{:?}-t{threads}", self.mode);
            let mut digest = RunDigest::from_attributions(
                label,
                makespan.as_micros() as u64,
                Some(&cp),
                &attributions,
            );
            digest.set_counter("library_builds", library_builds);
            digest.set_counter("threads", threads as u64);
            Some(RunObs {
                attributions,
                digest,
            })
        } else {
            None
        };
        ExecReport {
            events_processed: final_result.events_processed,
            final_result,
            dataset_results,
            makespan,
            tasks_executed: task_times.len() as u64,
            transient_failures,
            task_times,
            library_builds,
            per_worker_tasks,
            result_bytes,
            obs,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<P: Processor + ?Sized>(
    worker: usize,
    task_rx: channel::Receiver<TaskMsg>,
    done_tx: channel::Sender<DoneMsg>,
    mode: ExecMode,
    import_work: usize,
    obs: bool,
    chaos: Option<ExecChaos>,
    clock: &WallClock,
    processor: &P,
    datasets: &[Dataset],
) {
    // Serverless: the LibraryTask instantiates its (hoisted) imports once.
    let resident = match mode {
        ExecMode::Serverless => Some(LibraryState::build(import_work)),
        ExecMode::Standard => None,
    };
    while let Ok(msg) = task_rx.recv() {
        // The doom decision is a pure function of (seed, task, attempt),
        // so which attempts fail does not depend on which worker thread
        // happened to pick the message up.
        if chaos.is_some_and(|c| c.dooms(msg.task, msg.attempt)) {
            let failed = DoneMsg {
                task: msg.task,
                worker,
                output: None,
                attempt: msg.attempt,
                elapsed: Duration::ZERO,
                built_library: false,
                attribution: None,
            };
            if done_tx.send(failed).is_err() {
                return;
            }
            continue;
        }
        let t_recv = clock.now_us();
        let t0 = Instant::now();
        let mut built = false;
        // Standard tasks re-load the library on every execution.
        let fresh;
        let lib = match &resident {
            Some(lib) => lib,
            None => {
                fresh = LibraryState::build(import_work);
                built = true;
                &fresh
            }
        };
        let t_lib = clock.now_us();
        let output = match msg.action {
            TaskAction::Process { dataset, chunk } => {
                let batch = datasets[dataset].materialize(&chunk);
                let set = processor.process(&batch);
                // Consult the calibration library so its construction is
                // semantically real (and cannot be optimized away). The
                // correction is identically applied in every mode, so
                // results stay mode-independent.
                let probe = batch
                    .jagged("Jet_pt")
                    .map(|j| j.values().first().copied().unwrap_or(30.0))
                    .unwrap_or(30.0);
                std::hint::black_box(lib.correction_for_pt(probe));
                set
            }
            TaskAction::Accumulate => {
                let mut acc = HistogramSet::new();
                for input in &msg.inputs {
                    acc.merge(input);
                }
                acc
            }
        };
        let elapsed = t0.elapsed();
        let t_done = clock.now_us();
        let output = Arc::new(output);
        // Each phase is the delta between consecutive reads of the shared
        // monotonic clock, so the phases sum to `end_us - start_us`
        // exactly. Interpreter startup has no in-process analog (no
        // process spawn) and input transfer is an Arc clone: both stay 0;
        // the library (re)build is the imports phase.
        let attribution = if obs {
            let t_out = clock.now_us();
            let mut phases = PhaseBreakdown::new();
            phases.set(Phase::Dispatch, t_recv.saturating_sub(msg.sent_us));
            phases.set(Phase::Imports, t_lib.saturating_sub(t_recv));
            phases.set(Phase::Compute, t_done.saturating_sub(t_lib));
            phases.set(Phase::OutputTransfer, t_out.saturating_sub(t_done));
            Some(TaskAttribution {
                task: msg.task.0,
                worker: worker as u32,
                start_us: msg.sent_us,
                end_us: t_out,
                phases,
            })
        } else {
            None
        };
        let msg = DoneMsg {
            task: msg.task,
            worker,
            output: Some(output),
            attempt: msg.attempt,
            elapsed,
            built_library: built,
            attribution,
        };
        if done_tx.send(msg).is_err() {
            return; // manager is gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_analysis::{run_processor_pipeline, Dv3Processor, TriPhotonProcessor};
    use vine_simcore::units::KB;

    fn datasets(n: usize, events_per: u64) -> Vec<Dataset> {
        (0..n)
            .map(|i| Dataset::synthesize(format!("ds{i}"), events_per * KB, KB, 200, 2))
            .collect()
    }

    fn exec(mode: ExecMode, threads: usize) -> Executor {
        Executor {
            threads,
            mode,
            import_work: 20_000,
            arity: 3,
            obs: false,
            chaos: None,
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let dss = datasets(2, 600);
        let proc = Dv3Processor::default();
        // Reference: sequential pipeline over all chunks in order.
        let batches: Vec<_> = dss
            .iter()
            .flat_map(|d| d.chunks().map(|c| d.materialize(c)).collect::<Vec<_>>())
            .collect();
        let reference = run_processor_pipeline(&proc, &batches);

        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        assert_eq!(report.events_processed, reference.events_processed);
        for name in ["dijet_mass", "bb_mass", "met", "n_jets", "jet_pt"] {
            let a = report.final_result.h1(name).unwrap();
            let b = reference.h1(name).unwrap();
            assert_eq!(a.counts(), b.counts(), "{name} counts differ");
            assert_eq!(a.underflow(), b.underflow());
            assert_eq!(a.overflow(), b.overflow());
        }
    }

    #[test]
    fn result_independent_of_mode_and_threads() {
        let dss = datasets(2, 400);
        let proc = TriPhotonProcessor::default();
        let a = exec(ExecMode::Serverless, 1).run(&proc, &dss);
        let b = exec(ExecMode::Serverless, 8).run(&proc, &dss);
        let c = exec(ExecMode::Standard, 3).run(&proc, &dss);
        assert_eq!(a.final_result, b.final_result);
        assert_eq!(a.final_result, c.final_result);
    }

    #[test]
    fn standard_mode_rebuilds_library_per_task() {
        let dss = datasets(1, 300);
        let proc = Dv3Processor::default();
        let std_report = exec(ExecMode::Standard, 2).run(&proc, &dss);
        let srv_report = exec(ExecMode::Serverless, 2).run(&proc, &dss);
        assert_eq!(std_report.tasks_executed, srv_report.tasks_executed);
        // Standard: one build per task. Serverless: one per worker.
        assert_eq!(std_report.library_builds, std_report.tasks_executed);
        assert_eq!(srv_report.library_builds, 2);
    }

    #[test]
    fn serverless_tasks_are_faster_on_average() {
        let dss = datasets(1, 500);
        let proc = Dv3Processor::default();
        // Big library so the rebuild dominates task time.
        let mk = |mode| Executor {
            threads: 2,
            mode,
            import_work: 2_000_000,
            arity: 4,
            obs: false,
            chaos: None,
        };
        let std_report = mk(ExecMode::Standard).run(&proc, &dss);
        let srv_report = mk(ExecMode::Serverless).run(&proc, &dss);
        assert!(
            srv_report.mean_task_time() < std_report.mean_task_time(),
            "serverless {:?} !< standard {:?}",
            srv_report.mean_task_time(),
            std_report.mean_task_time()
        );
    }

    #[test]
    fn per_dataset_results_partition_the_total() {
        let dss = datasets(3, 300);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        let total: u64 = report
            .dataset_results
            .iter()
            .map(|r| r.events_processed)
            .sum();
        assert_eq!(total, report.events_processed);
        assert_eq!(report.dataset_results.len(), 3);
    }

    #[test]
    fn per_worker_counts_sum_to_total() {
        let dss = datasets(1, 400);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        assert_eq!(report.per_worker_tasks.len(), 4);
        let sum: u64 = report.per_worker_tasks.iter().sum();
        assert_eq!(sum, report.tasks_executed);
    }

    #[test]
    fn result_bytes_reflects_serialized_size() {
        let dss = datasets(1, 200);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 2).run(&proc, &dss);
        let encoded = vine_data::encode_histogram_set(&report.final_result);
        assert_eq!(report.result_bytes, encoded.len() as u64);
        // And it decodes back to the same physics.
        let back = vine_data::decode_histogram_set(&encoded).unwrap();
        assert_eq!(back, report.final_result);
    }

    #[test]
    fn attribution_is_exact_and_diff_blames_imports() {
        let dss = datasets(1, 300);
        let proc = Dv3Processor::default();
        let mk = |mode| Executor {
            threads: 2,
            mode,
            import_work: 500_000,
            arity: 3,
            obs: true,
            chaos: None,
        };
        let std_report = mk(ExecMode::Standard).run(&proc, &dss);
        let srv_report = mk(ExecMode::Serverless).run(&proc, &dss);

        let std_obs = std_report.obs.as_ref().unwrap();
        let srv_obs = srv_report.obs.as_ref().unwrap();
        assert!(std_obs.all_exact(), "phases must sum to wall time exactly");
        assert!(srv_obs.all_exact());
        assert_eq!(
            std_obs.digest.task_executions, std_report.tasks_executed,
            "one attribution per executed task"
        );
        assert!(std_obs.digest.critical_path_us > 0);
        // The standard-mode penalty is the per-task library rebuild: the
        // serverless diff must be dominated by the imports phase.
        let diff = std_obs.digest.diff(&srv_obs.digest);
        assert!(
            diff.phase_delta(vine_obs::Phase::Imports) < 0,
            "serverless should spend less on imports: {}",
            diff.to_text()
        );
    }

    #[test]
    fn obs_off_means_no_report_section() {
        let dss = datasets(1, 100);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 2).run(&proc, &dss);
        assert!(report.obs.is_none());
    }

    #[test]
    fn single_thread_executes_everything() {
        let dss = datasets(1, 200);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Standard, 1).run(&proc, &dss);
        assert!(report.tasks_executed > 0);
        assert!(report.events_processed > 0);
        assert_eq!(report.task_times.len() as u64, report.tasks_executed);
    }

    #[test]
    fn chaos_failures_retry_and_preserve_physics() {
        let dss = datasets(2, 400);
        let proc = Dv3Processor::default();
        let clean = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        let mut chaotic = exec(ExecMode::Serverless, 4);
        chaotic.chaos = Some(ExecChaos {
            seed: 42,
            failure_prob: 0.3,
            max_retries: 5,
        });
        let report = chaotic.run(&proc, &dss);
        assert!(report.transient_failures > 0, "chaos never fired");
        assert_eq!(report.final_result, clean.final_result);
        assert_eq!(clean.transient_failures, 0);
    }

    #[test]
    fn chaos_schedule_is_independent_of_thread_count() {
        let dss = datasets(2, 300);
        let proc = TriPhotonProcessor::default();
        let run = |threads| {
            let mut e = exec(ExecMode::Serverless, threads);
            e.chaos = Some(ExecChaos {
                seed: 7,
                failure_prob: 0.25,
                max_retries: 4,
            });
            e.run(&proc, &dss)
        };
        let one = run(1);
        let many = run(8);
        assert!(one.transient_failures > 0);
        assert_eq!(
            one.transient_failures, many.transient_failures,
            "fault schedule must not depend on thread count"
        );
        assert_eq!(one.final_result, many.final_result);
        assert_eq!(one.tasks_executed, many.tasks_executed);
    }

    #[test]
    fn chaos_attempts_past_the_budget_always_run_clean() {
        let chaos = ExecChaos {
            seed: 1,
            failure_prob: 1.0,
            max_retries: 3,
        };
        let t = TaskId(5);
        assert!(chaos.dooms(t, 1) && chaos.dooms(t, 3));
        assert!(!chaos.dooms(t, 4), "attempt past max_retries must pass");
    }
}
