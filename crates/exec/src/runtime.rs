//! The threaded manager/worker runtime.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use vine_analysis::Processor;
use vine_dag::{FileId, ReadyTracker, TaskId};
use vine_data::{Dataset, HistogramSet};

use crate::library::LibraryState;
use crate::plan::{ExecPlan, TaskAction};

/// Execution paradigm (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Conventional tasks: every execution rebuilds the library from
    /// scratch (the interpreter-start + import cost).
    Standard,
    /// Serverless: each worker instantiates the library once (a
    /// LibraryTask with hoisted imports) and invocations reuse it.
    Serverless,
}

/// The runtime's configuration.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    /// Worker threads (task slots).
    pub threads: usize,
    /// Execution paradigm.
    pub mode: ExecMode,
    /// Library size (see [`LibraryState::build`]).
    pub import_work: usize,
    /// Accumulation-tree arity.
    pub arity: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            mode: ExecMode::Serverless,
            import_work: LibraryState::DEFAULT_WORK,
            arity: 8,
        }
    }
}

/// What one run produced.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// The final cross-dataset histogram set.
    pub final_result: HistogramSet,
    /// Per-dataset results, in dataset order.
    pub dataset_results: Vec<HistogramSet>,
    /// Wall-clock makespan of the run.
    pub makespan: Duration,
    /// Per-task execution durations, in completion order.
    pub task_times: Vec<Duration>,
    /// How many times the library was built.
    pub library_builds: u64,
    /// Tasks executed.
    pub tasks_executed: u64,
    /// Events processed (from the physics, as a cross-check).
    pub events_processed: u64,
    /// Tasks executed by each worker thread.
    pub per_worker_tasks: Vec<u64>,
    /// Size of the final result when serialized with the wire codec.
    pub result_bytes: u64,
}

impl ExecReport {
    /// Mean task execution time.
    pub fn mean_task_time(&self) -> Duration {
        if self.task_times.is_empty() {
            Duration::ZERO
        } else {
            self.task_times.iter().sum::<Duration>() / self.task_times.len() as u32
        }
    }
}

struct TaskMsg {
    task: TaskId,
    action: TaskAction,
    inputs: Vec<Arc<HistogramSet>>,
}

struct DoneMsg {
    task: TaskId,
    worker: usize,
    output: Arc<HistogramSet>,
    elapsed: Duration,
    built_library: bool,
}

impl Executor {
    /// Execute `processor` over `datasets` and return the report.
    ///
    /// The result is **independent of thread count and execution mode**:
    /// accumulation order is fixed by the plan, not by completion timing.
    pub fn run<P: Processor + ?Sized>(&self, processor: &P, datasets: &[Dataset]) -> ExecReport {
        let threads = self.threads.max(1);
        let plan = ExecPlan::build(datasets, self.arity.max(2));
        let mut tracker = ReadyTracker::new(&plan.graph);
        let mut storage: HashMap<FileId, Arc<HistogramSet>> = HashMap::new();
        let mut task_times = Vec::with_capacity(plan.task_count());
        let mut library_builds = 0u64;

        let started = Instant::now();
        let (task_tx, task_rx) = channel::unbounded::<TaskMsg>();
        let (done_tx, done_rx) = channel::unbounded::<DoneMsg>();

        let mut per_worker_tasks = vec![0u64; threads];
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let mode = self.mode;
                let import_work = self.import_work;
                scope.spawn(move || {
                    worker_loop(
                        worker,
                        task_rx,
                        done_tx,
                        mode,
                        import_work,
                        processor,
                        datasets,
                    )
                });
            }
            drop(task_rx);
            drop(done_tx);

            // Prime the pipeline with every initially-ready task.
            let dispatch =
                |tracker: &mut ReadyTracker, storage: &HashMap<FileId, Arc<HistogramSet>>| {
                    while let Some(task) = tracker.pop_ready() {
                        let inputs = plan
                            .graph
                            .task(task)
                            .inputs
                            .iter()
                            .filter_map(|f| storage.get(f).cloned())
                            .collect();
                        task_tx
                            .send(TaskMsg {
                                task,
                                action: plan.action(task).clone(),
                                inputs,
                            })
                            .expect("workers alive");
                    }
                };
            dispatch(&mut tracker, &storage);

            while !tracker.is_complete() {
                let done = done_rx.recv().expect("workers alive while tasks pending");
                for &f in &plan.graph.task(done.task).outputs {
                    storage.insert(f, done.output.clone());
                }
                task_times.push(done.elapsed);
                per_worker_tasks[done.worker] += 1;
                if done.built_library {
                    library_builds += 1;
                }
                tracker.mark_done(done.task);
                dispatch(&mut tracker, &storage);
            }
            drop(task_tx); // workers drain and exit
        });

        let final_result = storage
            .get(&plan.final_result)
            .expect("final result produced")
            .as_ref()
            .clone();
        let dataset_results = plan
            .dataset_results
            .iter()
            .map(|f| {
                storage
                    .get(f)
                    .expect("dataset result produced")
                    .as_ref()
                    .clone()
            })
            .collect();
        // In serverless mode each worker built the library once at startup.
        if self.mode == ExecMode::Serverless {
            library_builds += threads as u64;
        }
        let result_bytes = vine_data::encode_histogram_set(&final_result).len() as u64;
        ExecReport {
            events_processed: final_result.events_processed,
            final_result,
            dataset_results,
            makespan: started.elapsed(),
            tasks_executed: task_times.len() as u64,
            task_times,
            library_builds,
            per_worker_tasks,
            result_bytes,
        }
    }
}

fn worker_loop<P: Processor + ?Sized>(
    worker: usize,
    task_rx: channel::Receiver<TaskMsg>,
    done_tx: channel::Sender<DoneMsg>,
    mode: ExecMode,
    import_work: usize,
    processor: &P,
    datasets: &[Dataset],
) {
    // Serverless: the LibraryTask instantiates its (hoisted) imports once.
    let resident = match mode {
        ExecMode::Serverless => Some(LibraryState::build(import_work)),
        ExecMode::Standard => None,
    };
    while let Ok(msg) = task_rx.recv() {
        let t0 = Instant::now();
        let mut built = false;
        // Standard tasks re-load the library on every execution.
        let fresh;
        let lib = match &resident {
            Some(lib) => lib,
            None => {
                fresh = LibraryState::build(import_work);
                built = true;
                &fresh
            }
        };
        let output = match msg.action {
            TaskAction::Process { dataset, chunk } => {
                let batch = datasets[dataset].materialize(&chunk);
                let set = processor.process(&batch);
                // Consult the calibration library so its construction is
                // semantically real (and cannot be optimized away). The
                // correction is identically applied in every mode, so
                // results stay mode-independent.
                let probe = batch
                    .jagged("Jet_pt")
                    .map(|j| j.values().first().copied().unwrap_or(30.0))
                    .unwrap_or(30.0);
                std::hint::black_box(lib.correction_for_pt(probe));
                set
            }
            TaskAction::Accumulate => {
                let mut acc = HistogramSet::new();
                for input in &msg.inputs {
                    acc.merge(input);
                }
                acc
            }
        };
        let elapsed = t0.elapsed();
        let msg = DoneMsg {
            task: msg.task,
            worker,
            output: Arc::new(output),
            elapsed,
            built_library: built,
        };
        if done_tx.send(msg).is_err() {
            return; // manager is gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_analysis::{run_processor_pipeline, Dv3Processor, TriPhotonProcessor};
    use vine_simcore::units::KB;

    fn datasets(n: usize, events_per: u64) -> Vec<Dataset> {
        (0..n)
            .map(|i| Dataset::synthesize(format!("ds{i}"), events_per * KB, KB, 200, 2))
            .collect()
    }

    fn exec(mode: ExecMode, threads: usize) -> Executor {
        Executor {
            threads,
            mode,
            import_work: 20_000,
            arity: 3,
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let dss = datasets(2, 600);
        let proc = Dv3Processor::default();
        // Reference: sequential pipeline over all chunks in order.
        let batches: Vec<_> = dss
            .iter()
            .flat_map(|d| d.chunks().map(|c| d.materialize(c)).collect::<Vec<_>>())
            .collect();
        let reference = run_processor_pipeline(&proc, &batches);

        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        assert_eq!(report.events_processed, reference.events_processed);
        for name in ["dijet_mass", "bb_mass", "met", "n_jets", "jet_pt"] {
            let a = report.final_result.h1(name).unwrap();
            let b = reference.h1(name).unwrap();
            assert_eq!(a.counts(), b.counts(), "{name} counts differ");
            assert_eq!(a.underflow(), b.underflow());
            assert_eq!(a.overflow(), b.overflow());
        }
    }

    #[test]
    fn result_independent_of_mode_and_threads() {
        let dss = datasets(2, 400);
        let proc = TriPhotonProcessor::default();
        let a = exec(ExecMode::Serverless, 1).run(&proc, &dss);
        let b = exec(ExecMode::Serverless, 8).run(&proc, &dss);
        let c = exec(ExecMode::Standard, 3).run(&proc, &dss);
        assert_eq!(a.final_result, b.final_result);
        assert_eq!(a.final_result, c.final_result);
    }

    #[test]
    fn standard_mode_rebuilds_library_per_task() {
        let dss = datasets(1, 300);
        let proc = Dv3Processor::default();
        let std_report = exec(ExecMode::Standard, 2).run(&proc, &dss);
        let srv_report = exec(ExecMode::Serverless, 2).run(&proc, &dss);
        assert_eq!(std_report.tasks_executed, srv_report.tasks_executed);
        // Standard: one build per task. Serverless: one per worker.
        assert_eq!(std_report.library_builds, std_report.tasks_executed);
        assert_eq!(srv_report.library_builds, 2);
    }

    #[test]
    fn serverless_tasks_are_faster_on_average() {
        let dss = datasets(1, 500);
        let proc = Dv3Processor::default();
        // Big library so the rebuild dominates task time.
        let mk = |mode| Executor {
            threads: 2,
            mode,
            import_work: 2_000_000,
            arity: 4,
        };
        let std_report = mk(ExecMode::Standard).run(&proc, &dss);
        let srv_report = mk(ExecMode::Serverless).run(&proc, &dss);
        assert!(
            srv_report.mean_task_time() < std_report.mean_task_time(),
            "serverless {:?} !< standard {:?}",
            srv_report.mean_task_time(),
            std_report.mean_task_time()
        );
    }

    #[test]
    fn per_dataset_results_partition_the_total() {
        let dss = datasets(3, 300);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        let total: u64 = report
            .dataset_results
            .iter()
            .map(|r| r.events_processed)
            .sum();
        assert_eq!(total, report.events_processed);
        assert_eq!(report.dataset_results.len(), 3);
    }

    #[test]
    fn per_worker_counts_sum_to_total() {
        let dss = datasets(1, 400);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 4).run(&proc, &dss);
        assert_eq!(report.per_worker_tasks.len(), 4);
        let sum: u64 = report.per_worker_tasks.iter().sum();
        assert_eq!(sum, report.tasks_executed);
    }

    #[test]
    fn result_bytes_reflects_serialized_size() {
        let dss = datasets(1, 200);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Serverless, 2).run(&proc, &dss);
        let encoded = vine_data::encode_histogram_set(&report.final_result);
        assert_eq!(report.result_bytes, encoded.len() as u64);
        // And it decodes back to the same physics.
        let back = vine_data::decode_histogram_set(&encoded).unwrap();
        assert_eq!(back, report.final_result);
    }

    #[test]
    fn single_thread_executes_everything() {
        let dss = datasets(1, 200);
        let proc = Dv3Processor::default();
        let report = exec(ExecMode::Standard, 1).run(&proc, &dss);
        assert!(report.tasks_executed > 0);
        assert!(report.events_processed > 0);
        assert_eq!(report.task_times.len() as u64, report.tasks_executed);
    }
}
