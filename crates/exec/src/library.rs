//! The "library" a task needs before it can run.
//!
//! In the paper's Python stack, every conventional task execution starts an
//! interpreter and imports numpy/awkward/coffea — a genuinely expensive,
//! pure-overhead step that serverless LibraryTasks amortize (§IV-B). The
//! in-process equivalent here is a numeric calibration table that is
//! genuinely expensive to build and genuinely used by the processors:
//! a jet-energy-correction-style lookup computed by iterating a
//! transcendental map. The work cannot be constant-folded (it depends on
//! the table size parameter) and the table is consulted during analysis,
//! so the compiler cannot remove it.

/// Expensive-to-build, cheap-to-use calibration state.
#[derive(Clone, Debug)]
pub struct LibraryState {
    /// Calibration lookup, indexed by quantized pₜ.
    table: Vec<f64>,
}

impl LibraryState {
    /// Build the library with `work` table entries. `work` plays the role
    /// of "how much gets imported"; the default used by the executor is
    /// [`LibraryState::DEFAULT_WORK`].
    pub fn build(work: usize) -> Self {
        let n = work.max(16);
        let mut table = Vec::with_capacity(n);
        // Iterated transcendental map: ~n sin/exp evaluations.
        let mut x = 0.5f64;
        for i in 0..n {
            x = (x * 3.9).sin().abs();
            // A smooth, bounded correction factor near 1.0.
            let correction = 1.0 + 0.05 * (x - 0.5) * (-((i % 97) as f64) / 97.0).exp();
            table.push(correction);
        }
        LibraryState { table }
    }

    /// Default library size: large enough that a per-task rebuild is
    /// measurably expensive (a few ms), as a Python import storm is.
    pub const DEFAULT_WORK: usize = 400_000;

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table is empty (never true for built libraries).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Look up the calibration factor for a transverse momentum.
    pub fn correction_for_pt(&self, pt: f64) -> f64 {
        let idx = (pt.clamp(0.0, 6500.0) / 6500.0 * (self.table.len() - 1) as f64) as usize;
        self.table[idx]
    }

    /// A deterministic digest of the table (for tests: any two builds with
    /// equal `work` must agree).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in &self.table {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_are_deterministic() {
        let a = LibraryState::build(10_000);
        let b = LibraryState::build(10_000);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.len(), 10_000);
    }

    #[test]
    fn different_sizes_differ() {
        assert_ne!(
            LibraryState::build(1000).digest(),
            LibraryState::build(2000).digest()
        );
    }

    #[test]
    fn corrections_are_near_unity() {
        let lib = LibraryState::build(50_000);
        for pt in [0.0, 30.0, 100.0, 500.0, 6500.0, 9999.0] {
            let c = lib.correction_for_pt(pt);
            assert!((0.9..1.1).contains(&c), "correction {c} at pt {pt}");
        }
    }

    #[test]
    fn build_cost_scales_with_work() {
        use std::time::Instant;
        let t0 = Instant::now();
        let _small = LibraryState::build(10_000);
        let small = t0.elapsed();
        let t1 = Instant::now();
        let _big = LibraryState::build(1_000_000);
        let big = t1.elapsed();
        assert!(
            big > small,
            "library build cost not increasing: {small:?} vs {big:?}"
        );
    }

    #[test]
    fn minimum_size_enforced() {
        assert_eq!(LibraryState::build(0).len(), 16);
    }
}
