//! Integration tests: the lints against real workloads and configs.
//!
//! The headline regression is Fig 11 — the single-node reduction on
//! RS-class workers must be rejected statically (R001) while the tree
//! counterpart passes, without simulating either. The property tests pin
//! the other direction: graphs built through the `TaskGraph` builder API
//! never trip a structural error, and only injected corruptions do.

use proptest::prelude::*;
use vine_analysis::{ReductionShape, WorkloadSpec};
use vine_cluster::{ClusterSpec, WorkerSpec};
use vine_core::EngineConfig;
use vine_dag::{TaskGraph, TaskKind};
use vine_lint::{lint_all, lint_graph, Code};
use vine_simcore::units::gbit_per_sec;

fn rs_cluster(workers: usize) -> ClusterSpec {
    ClusterSpec {
        workers,
        worker: WorkerSpec::rs_triphoton(),
        manager_link_bw: gbit_per_sec(12.0),
    }
}

// ----- Fig 11, statically ---------------------------------------------------

#[test]
fn fig11_single_node_reduction_is_rejected_statically() {
    // Paper scale: each dataset's partials converge on one accumulation;
    // one worker hosting a core-count's worth of them needs ~2 TB against
    // a 700 GB disk. The lint proves it without running a single event.
    let spec = WorkloadSpec::rs_triphoton().with_reduction(ReductionShape::SingleNode);
    let cfg = EngineConfig::stack4(rs_cluster(14), 42);
    let report = lint_all(&spec.to_graph(), &cfg.lint_facts());
    assert!(
        report.has_code(Code::R001),
        "expected R001:\n{}",
        report.to_text()
    );
    assert!(report.has_errors());
}

#[test]
fn fig11_tree_reduction_passes_statically() {
    let spec = WorkloadSpec::rs_triphoton().with_reduction(ReductionShape::Tree { arity: 8 });
    let cfg = EngineConfig::stack4(rs_cluster(14), 42);
    let report = lint_all(&spec.to_graph(), &cfg.lint_facts());
    assert!(
        !report.has_errors(),
        "tree variant must pass:\n{}",
        report.to_text()
    );
}

// ----- presets × workloads stay clean ---------------------------------------

#[test]
fn standard_presets_lint_without_errors() {
    for spec in [
        WorkloadSpec::dv3_small(),
        WorkloadSpec::dv3_medium(),
        WorkloadSpec::dv3_large(),
        WorkloadSpec::rs_triphoton(),
    ] {
        let g = spec.to_graph();
        for stack in 1..=4 {
            let cfg = EngineConfig::stack(stack, ClusterSpec::standard(200), 42);
            let report = lint_all(&g, &cfg.lint_facts());
            assert!(
                !report.has_errors(),
                "{} / stack {stack}:\n{}",
                spec.name,
                report.to_text()
            );
        }
    }
}

#[test]
fn dask_preset_is_clean_below_scale_and_flagged_above() {
    let cfg = EngineConfig::dask_distributed(ClusterSpec::standard(10), 42);
    let small = WorkloadSpec::dv3_small().to_graph();
    let r = lint_all(&small, &cfg.lint_facts());
    assert!(!r.has_errors(), "{}", r.to_text());

    let large = WorkloadSpec::dv3_large().to_graph(); // 1.2 TB of input
    let r = lint_all(&large, &cfg.lint_facts());
    assert!(r.has_code(Code::C005) && r.has_errors());
}

// ----- injected corruptions -------------------------------------------------

fn pipeline() -> TaskGraph {
    let mut g = TaskGraph::new();
    let parts: Vec<_> = (0..8)
        .map(|i| g.add_external_file(format!("p{i}"), 1_000_000))
        .collect();
    let partials = g.map_partitions("proc", &parts, 500_000, 1.0);
    g.add_task("acc", TaskKind::Accumulate, partials, &[1_000], 0.5);
    g
}

#[test]
fn severed_producer_link_is_caught_as_g001() {
    let mut g = pipeline();
    let (tasks, _) = g.raw_parts_mut();
    // Task 0 claims no outputs, but its output file still names it as
    // producer: a severed producer link.
    tasks[0].outputs.clear();
    let r = lint_graph(&g);
    assert!(r.has_code(Code::G001) && r.has_errors(), "{}", r.to_text());
}

#[test]
fn duplicate_output_name_is_caught_as_g003() {
    let mut g = pipeline();
    let (_, files) = g.raw_parts_mut();
    let clone = files[8].name.clone(); // first partial
    files[9].name = clone;
    let r = lint_graph(&g);
    assert!(r.has_code(Code::G003) && r.has_errors(), "{}", r.to_text());
}

#[test]
fn over_capacity_reduce_is_caught_as_r001() {
    // 8 partials of 50 GB into one accumulation on 12-core workers with
    // 100 GB disks: a single pin of 400 GB can never fit.
    let mut g = TaskGraph::new();
    let parts: Vec<_> = (0..8)
        .map(|i| g.add_external_file(format!("p{i}"), 50_000_000_000))
        .collect();
    g.add_task("acc", TaskKind::Accumulate, parts, &[1_000], 0.5);
    let mut cluster = ClusterSpec::standard(4);
    cluster.worker.disk_bytes = 100_000_000_000;
    let cfg = EngineConfig::stack4(cluster, 42);
    let r = lint_all(&g, &cfg.lint_facts());
    assert!(r.has_code(Code::R001) && r.has_code(Code::R002) && r.has_errors());
}

// ----- builder graphs lint clean (property) ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any graph assembled through the builder API — externals, mapped
    /// partitions, a bounded-arity reduction — has no structural errors.
    #[test]
    fn builder_graphs_have_no_structural_errors(
        n_parts in 1usize..40,
        arity in 2usize..9,
        part_bytes in 1u64..1_000_000,
    ) {
        let mut g = TaskGraph::new();
        let parts: Vec<_> = (0..n_parts)
            .map(|i| g.add_external_file(format!("p{i}"), part_bytes))
            .collect();
        let partials = g.map_partitions("proc", &parts, part_bytes / 2 + 1, 1.0);
        vine_dag::rewrite::add_tree_reduce(&mut g, "acc", &partials, arity, 1_000, 0.1);
        let r = lint_graph(&g);
        prop_assert!(!r.has_errors(), "{}", r.to_text());
    }

    /// The full battery against the reference facts: builder graphs with
    /// modest file sizes produce no errors either.
    #[test]
    fn builder_graphs_pass_full_battery_on_reference_facts(
        n_parts in 1usize..30,
        arity in 2usize..6,
    ) {
        let mut g = TaskGraph::new();
        let parts: Vec<_> = (0..n_parts)
            .map(|i| g.add_external_file(format!("p{i}"), 1_000_000))
            .collect();
        let partials = g.map_partitions("proc", &parts, 500_000, 1.0);
        vine_dag::rewrite::add_tree_reduce(&mut g, "acc", &partials, arity, 1_000, 0.1);
        let r = lint_all(&g, &vine_lint::EngineFacts::default());
        prop_assert!(!r.has_errors(), "{}", r.to_text());
    }
}
