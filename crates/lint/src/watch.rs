//! Standing-submission lints (W codes).
//!
//! A standing submission pairs a graph template with a trigger policy and
//! re-runs as its datasets grow. The failure modes are quiet: a `Manual`
//! trigger never fires and the served histograms silently fall behind the
//! data; a watch list wider than what the template reads burns refreshes
//! that recompute nothing; an unbounded debounce lets a steady trickle of
//! appends postpone the refresh forever. None of these abort a run, so
//! they are exactly the class of mistake a pre-flight lint should catch.
//!
//! `vine-watch` builds a [`WatchFacts`] snapshot when a submission
//! registers and runs [`lint_watch`] — the dependency arrow stays
//! `vine-watch → vine-lint`, mirroring how `vine-serve` uses the F codes.

use crate::{Code, Diagnostic, Locus, Report, Severity};

/// Facts about one standing submission, as plain data.
#[derive(Clone, Debug)]
pub struct StandingFacts {
    /// Display label (appears in diagnostics).
    pub label: String,
    /// Owning tenant index.
    pub tenant: usize,
    /// True unless the trigger policy is `Manual`.
    pub has_trigger: bool,
    /// How many datasets the submission watches for growth.
    pub watched_datasets: usize,
    /// How many datasets the graph template actually reads.
    pub graph_datasets: usize,
    /// For debounced triggers: false when `max_pending` is `None`.
    /// Non-debounced policies report true.
    pub debounce_bounded: bool,
}

/// Facts about every standing submission registered with a watch session.
#[derive(Clone, Debug, Default)]
pub struct WatchFacts {
    /// One entry per standing submission, in registration order.
    pub submissions: Vec<StandingFacts>,
}

/// Run the W-family lints over a watch session's standing submissions.
pub fn lint_watch(facts: &WatchFacts) -> Report {
    let mut report = Report::new();
    for s in &facts.submissions {
        if !s.has_trigger {
            report.push(Diagnostic {
                code: Code::W001,
                severity: Severity::Warn,
                locus: Locus::Tenant(s.tenant),
                message: format!(
                    "standing submission '{}' has no automatic trigger: \
                     served results go stale as the dataset grows",
                    s.label
                ),
                suggestion: Some(
                    "pick EveryEpoch, BatchedAppends, or Debounced — or drive \
                     refresh_now from an external clock"
                        .into(),
                ),
            });
        }
        if s.watched_datasets > s.graph_datasets {
            report.push(Diagnostic {
                code: Code::W002,
                severity: Severity::Error,
                locus: Locus::Tenant(s.tenant),
                message: format!(
                    "standing submission '{}' watches {} dataset(s) but its \
                     template reads only {}: appends to the extras fire \
                     refreshes that recompute nothing",
                    s.label, s.watched_datasets, s.graph_datasets
                ),
                suggestion: Some("narrow the watch list to the datasets the template reads".into()),
            });
        }
        if !s.debounce_bounded {
            report.push(Diagnostic {
                code: Code::W003,
                severity: Severity::Warn,
                locus: Locus::Tenant(s.tenant),
                message: format!(
                    "standing submission '{}' debounces with no pending cap: \
                     a steady trickle of appends postpones the refresh forever",
                    s.label
                ),
                suggestion: Some("set max_pending to bound the postponement".into()),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> StandingFacts {
        StandingFacts {
            label: "dv3.muon".into(),
            tenant: 0,
            has_trigger: true,
            watched_datasets: 2,
            graph_datasets: 2,
            debounce_bounded: true,
        }
    }

    #[test]
    fn healthy_submission_is_clean() {
        let facts = WatchFacts {
            submissions: vec![healthy()],
        };
        assert!(lint_watch(&facts).is_clean());
    }

    #[test]
    fn manual_trigger_warns_w001() {
        let mut s = healthy();
        s.has_trigger = false;
        let r = lint_watch(&WatchFacts {
            submissions: vec![s],
        });
        assert!(r.has_code(Code::W001) && !r.has_errors());
    }

    #[test]
    fn overwide_watch_list_errors_w002() {
        let mut s = healthy();
        s.watched_datasets = 3;
        let r = lint_watch(&WatchFacts {
            submissions: vec![s],
        });
        assert!(r.has_code(Code::W002) && r.has_errors());
    }

    #[test]
    fn unbounded_debounce_warns_w003() {
        let mut s = healthy();
        s.debounce_bounded = false;
        let r = lint_watch(&WatchFacts {
            submissions: vec![s],
        });
        assert!(r.has_code(Code::W003) && !r.has_errors());
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::W003)
            .unwrap();
        assert_eq!(d.locus, Locus::Tenant(0));
    }

    #[test]
    fn diagnostics_accumulate_across_submissions() {
        let mut a = healthy();
        a.has_trigger = false;
        let mut b = healthy();
        b.tenant = 1;
        b.debounce_bounded = false;
        let r = lint_watch(&WatchFacts {
            submissions: vec![a, b],
        });
        assert_eq!(r.counts(), (0, 2, 0));
    }
}
