//! Config-consistency lints (C codes).
//!
//! These catch knob combinations §IV warns about: throttles set to zero
//! (a transfer that can never start is a deadlock, not a slow run),
//! replication that cannot happen, serverless execution whose LibraryTask
//! costs nothing (the trade-off the paper measures disappears), and
//! Dask.Distributed pointed at inputs the paper says it cannot run.

use vine_dag::TaskGraph;

use crate::{fmt_bytes, Code, Diagnostic, EngineFacts, Locus, Report, SchedulerFamily, Severity};

/// Run the config-consistency lints.
pub fn lint(graph: &TaskGraph, facts: &EngineFacts) -> Report {
    let mut report = Report::new();
    let mut push = |code, severity, message: String, suggestion: Option<String>| {
        report.push(Diagnostic {
            code,
            severity,
            locus: Locus::Config,
            message,
            suggestion,
        });
    };

    // C001 — serverless with a free library. The whole point of the
    // LibraryTask model is paying instantiation once instead of importing
    // per task; at zero cost every serverless-vs-standard comparison is
    // meaningless.
    if facts.serverless && facts.library_startup_s <= 0.0 {
        push(
            Code::C001,
            Severity::Warn,
            "serverless FunctionCalls with zero library instantiation cost".into(),
            Some("set the time model's library_startup to a realistic value".into()),
        );
    }

    // C002 — worker-local import distribution only pays off for the
    // serverless path; standard tasks re-import per invocation wherever
    // the environment lives.
    if facts.import_worker_local && !facts.serverless {
        push(
            Code::C002,
            Severity::Warn,
            "worker-local import distribution with conventional (non-serverless) tasks".into(),
            Some("enable FunctionCalls, or import from the shared filesystem".into()),
        );
    }

    // C003 — peer transfers that can never start. The manager throttles
    // concurrent peer transfers per worker; zero means every file wait
    // blocks forever.
    if facts.peer_transfers && facts.max_peer_transfers_per_worker == 0 {
        push(
            Code::C003,
            Severity::Error,
            "peer transfers enabled with max_peer_transfers_per_worker = 0".into(),
            Some("raise the throttle (the presets use 3) or disable peer transfers".into()),
        );
    }

    // C004 — staging that can never start, same shape as C003 but for
    // shared-FS reads.
    if facts.max_concurrent_stagings == 0 {
        push(
            Code::C004,
            Severity::Error,
            "max_concurrent_stagings = 0: no input can ever be staged".into(),
            Some("raise the staging throttle (the presets use 8)".into()),
        );
    }

    // C005 — the paper's §V finding, applied statically: beyond ~0.5 TB
    // of input Dask.Distributed "was unable to run" the workload. The
    // engine enforces this at runtime; flagging it here saves the run.
    if facts.scheduler == SchedulerFamily::DaskDistributed {
        if let Some(limit) = facts.dask_unstable_above_bytes {
            let dataset = graph.external_bytes();
            if dataset > limit {
                push(
                    Code::C005,
                    Severity::Error,
                    format!(
                        "Dask.Distributed with {} of input exceeds its stable scale ({})",
                        fmt_bytes(dataset),
                        fmt_bytes(limit)
                    ),
                    Some("run this workload on the TaskVine stack".into()),
                );
            }
        }
    }

    // C006 — more replicas than workers can ever exist.
    if facts.replica_target as usize > facts.workers && facts.workers > 0 {
        push(
            Code::C006,
            Severity::Warn,
            format!(
                "replica_target {} exceeds the {} available workers",
                facts.replica_target, facts.workers
            ),
            Some("lower replica_target or add workers".into()),
        );
    }

    // C007 — data movement contradicting the scheduler generation: Work
    // Queue routes everything through the manager (peer transfers are a
    // TaskVine capability), and TaskVine without peer transfers forfeits
    // the mechanism replication and data-aware placement rely on.
    match facts.scheduler {
        SchedulerFamily::WorkQueue if facts.peer_transfers => push(
            Code::C007,
            Severity::Warn,
            "peer transfers enabled under Work Queue (manager-centric data movement)".into(),
            Some("use the TaskVine scheduler (stack 3+) for peer transfers".into()),
        ),
        SchedulerFamily::TaskVine if !facts.peer_transfers => push(
            Code::C007,
            Severity::Warn,
            "TaskVine without peer transfers: all data still moves through the manager".into(),
            Some("enable peer transfers unless this is a deliberate ablation".into()),
        ),
        _ => {}
    }

    // C008 — replication with a size cap of zero replicates nothing.
    if facts.replica_target >= 2 {
        if facts.replicate_max_bytes == 0 {
            push(
                Code::C008,
                Severity::Warn,
                "replication enabled but replicate_max_bytes = 0 excludes every file".into(),
                Some("raise replicate_max_bytes (the presets use 512 MB)".into()),
            );
        } else if !facts.peer_transfers {
            push(
                Code::C008,
                Severity::Warn,
                "replication enabled but peer transfers are off: replicas cannot be made".into(),
                Some("enable peer transfers or set replica_target = 1".into()),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_dag::{TaskGraph, TaskKind};

    fn graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let e = g.add_external_file("in", 1_000_000_000_000);
        g.add_task("t", TaskKind::Process, vec![e], &[10], 1.0);
        g
    }

    #[test]
    fn reference_facts_lint_clean() {
        assert!(lint(&graph(), &EngineFacts::default()).is_clean());
    }

    #[test]
    fn zero_library_cost_is_c001() {
        let f = EngineFacts {
            library_startup_s: 0.0,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C001));
    }

    #[test]
    fn worker_local_imports_without_serverless_is_c002() {
        let f = EngineFacts {
            serverless: false,
            hoist_imports: false,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C002));
    }

    #[test]
    fn zero_peer_throttle_is_c003_error() {
        let f = EngineFacts {
            max_peer_transfers_per_worker: 0,
            ..EngineFacts::default()
        };
        let r = lint(&graph(), &f);
        assert!(r.has_code(Code::C003) && r.has_errors());
    }

    #[test]
    fn zero_staging_throttle_is_c004_error() {
        let f = EngineFacts {
            max_concurrent_stagings: 0,
            ..EngineFacts::default()
        };
        let r = lint(&graph(), &f);
        assert!(r.has_code(Code::C004) && r.has_errors());
    }

    #[test]
    fn dask_at_tb_scale_is_c005_error() {
        let f = EngineFacts {
            scheduler: SchedulerFamily::DaskDistributed,
            dask_unstable_above_bytes: Some(500_000_000_000),
            ..EngineFacts::default()
        };
        let r = lint(&graph(), &f);
        assert!(r.has_code(Code::C005) && r.has_errors());
    }

    #[test]
    fn dask_below_limit_is_clean() {
        let mut g = TaskGraph::new();
        let e = g.add_external_file("in", 1_000_000);
        g.add_task("t", TaskKind::Process, vec![e], &[10], 1.0);
        let f = EngineFacts {
            scheduler: SchedulerFamily::DaskDistributed,
            dask_unstable_above_bytes: Some(500_000_000_000),
            ..EngineFacts::default()
        };
        assert!(lint(&g, &f).is_clean());
    }

    #[test]
    fn replicas_beyond_workers_is_c006() {
        let f = EngineFacts {
            replica_target: 9,
            workers: 4,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C006));
    }

    #[test]
    fn peer_transfers_under_work_queue_is_c007() {
        let f = EngineFacts {
            scheduler: SchedulerFamily::WorkQueue,
            serverless: false,
            hoist_imports: false,
            import_worker_local: false,
            replica_target: 1,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C007));
    }

    #[test]
    fn taskvine_without_peer_transfers_is_c007() {
        let f = EngineFacts {
            peer_transfers: false,
            replica_target: 1,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C007));
    }

    #[test]
    fn replication_without_transport_is_c008() {
        let f = EngineFacts {
            replicate_max_bytes: 0,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(), &f).has_code(Code::C008));
        let f = EngineFacts {
            peer_transfers: false,
            ..EngineFacts::default()
        };
        let r = lint(&graph(), &f);
        assert!(r.has_code(Code::C008) && r.has_code(Code::C007));
    }
}
