//! Resource-feasibility lints (R codes).
//!
//! The headline check is `R001`, the static version of Fig 11: a worker
//! executing accumulations must pin every input partial plus the output
//! for each concurrently-running reduction. The worst case co-locates
//! the largest `cores_per_worker` accumulations on one worker (data-aware
//! placement will happily do exactly that when their inputs already live
//! together), so the bound is the sum of the largest `cores` accumulation
//! pin sets. For the paper's single-node reduction that bound is ~2 TB
//! against a 700 GB disk — flagged before any event is simulated —
//! while the tree-reduce rewrite stays around 100 GB and passes.

use vine_dag::{TaskGraph, TaskKind};

use crate::{fmt_bytes, Code, Diagnostic, EngineFacts, Locus, Report, Severity};

/// Bytes a running task must hold simultaneously: all inputs + outputs.
fn pin_bytes(graph: &TaskGraph, t: &vine_dag::TaskNode) -> u64 {
    let ins: u64 = t.inputs.iter().map(|&f| graph.file(f).size_hint).sum();
    let outs: u64 = t.outputs.iter().map(|&f| graph.file(f).size_hint).sum();
    ins + outs
}

/// Run the feasibility lints.
pub fn lint(graph: &TaskGraph, facts: &EngineFacts) -> Report {
    let mut report = Report::new();

    // R004 — a cluster that cannot run anything at all. The remaining
    // bounds divide by these quantities, so stop here if degenerate.
    if facts.workers == 0 || facts.cores_per_worker == 0 || facts.disk_per_worker == 0 {
        report.push(Diagnostic {
            code: Code::R004,
            severity: Severity::Error,
            locus: Locus::Cluster,
            message: format!(
                "degenerate cluster: {} workers x {} cores, {} disk each",
                facts.workers,
                facts.cores_per_worker,
                fmt_bytes(facts.disk_per_worker)
            ),
            suggestion: Some("allocate at least one worker with cores and disk".into()),
        });
        return report;
    }

    // R002 — a single task whose pin set no worker can hold. Nothing the
    // scheduler does can make such a task runnable.
    for t in graph.tasks() {
        let pin = pin_bytes(graph, t);
        if pin > facts.disk_per_worker {
            report.push(Diagnostic {
                code: Code::R002,
                severity: Severity::Error,
                locus: Locus::Task(t.id),
                message: format!(
                    "task \"{}\" pins {} but each worker has {} of disk",
                    t.name,
                    fmt_bytes(pin),
                    fmt_bytes(facts.disk_per_worker)
                ),
                suggestion: Some("split the task or raise worker disk".into()),
            });
        }
    }

    // R001 — the Fig 11 bound. Sum of the largest `cores` accumulation
    // pin sets: the worst-case cache footprint when one worker hosts the
    // heaviest concurrent reductions.
    let mut acc_pins: Vec<(u64, vine_dag::TaskId)> = graph
        .tasks()
        .iter()
        .filter(|t| t.kind == TaskKind::Accumulate)
        .map(|t| (pin_bytes(graph, t), t.id))
        .collect();
    if !acc_pins.is_empty() {
        acc_pins.sort_unstable_by(|a, b| b.cmp(a));
        let slots = facts.cores_per_worker as usize;
        let bound: u64 = acc_pins.iter().take(slots).map(|&(p, _)| p).sum();
        if bound > facts.disk_per_worker {
            let worst = acc_pins[0].1;
            report.push(Diagnostic {
                code: Code::R001,
                severity: Severity::Error,
                locus: Locus::Task(worst),
                message: format!(
                    "worst-case reduction footprint {} on one {}-core worker exceeds \
                     its {} disk ({} accumulations, largest pins {})",
                    fmt_bytes(bound),
                    facts.cores_per_worker,
                    fmt_bytes(facts.disk_per_worker),
                    acc_pins.len(),
                    fmt_bytes(acc_pins[0].0)
                ),
                suggestion: Some(
                    "rewrite wide reductions as a bounded-arity tree \
                     (rewrite_wide_reductions) or raise worker disk"
                        .into(),
                ),
            });
        }
    }

    // R003 — the dataset cannot be cached cluster-wide. Routine when
    // inputs stream from the shared filesystem (they are re-read at need)
    // but a real hazard when they arrive over the WAN, where every
    // eviction turns into a repeated wide-area fetch.
    let total_disk = facts.disk_per_worker.saturating_mul(facts.workers as u64);
    let dataset = graph.external_bytes();
    if dataset > total_disk {
        report.push(Diagnostic {
            code: Code::R003,
            severity: if facts.remote_inputs {
                Severity::Warn
            } else {
                Severity::Info
            },
            locus: Locus::Cluster,
            message: format!(
                "dataset {} exceeds aggregate cluster cache {} ({} workers x {})",
                fmt_bytes(dataset),
                fmt_bytes(total_disk),
                facts.workers,
                fmt_bytes(facts.disk_per_worker)
            ),
            suggestion: Some("add workers or expect eviction-driven re-reads".into()),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_dag::TaskGraph;

    /// `n_parts` partials of `partial` bytes reduced by one accumulation
    /// per `arity` chunk (single level — enough for footprint tests).
    fn reduction(n_parts: usize, partial: u64, arity: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let parts: Vec<_> = (0..n_parts)
            .map(|i| g.add_external_file(format!("p{i}"), partial))
            .collect();
        for (i, chunk) in parts.chunks(arity).enumerate() {
            g.add_task(
                format!("acc{i}"),
                TaskKind::Accumulate,
                chunk.to_vec(),
                &[partial],
                1.0,
            );
        }
        g
    }

    fn facts(cores: u32, disk: u64) -> EngineFacts {
        EngineFacts {
            cores_per_worker: cores,
            disk_per_worker: disk,
            ..EngineFacts::default()
        }
    }

    #[test]
    fn bounded_tree_is_feasible() {
        // 40 partials of 1 GB, arity 4: each acc pins 5 GB; 12 cores can
        // co-host at most 10 of them = 50 GB < 108 GB.
        let g = reduction(40, 1_000_000_000, 4);
        assert!(lint(&g, &facts(12, 108_000_000_000)).is_clean());
    }

    #[test]
    fn single_node_reduce_is_r001() {
        // One 40-input accumulation pinning 41 GB against a 30 GB disk.
        let g = reduction(40, 1_000_000_000, 40);
        let r = lint(&g, &facts(12, 30_000_000_000));
        assert!(r.has_code(Code::R001) && r.has_errors());
        // The single pin also exceeds the disk alone.
        assert!(r.has_code(Code::R002));
    }

    #[test]
    fn concurrency_multiplies_the_footprint() {
        // Each acc pins 5 GB — fine alone, but 12 concurrent pins exceed
        // a 50 GB disk: R001 without R002.
        let g = reduction(48, 1_000_000_000, 4);
        let r = lint(&g, &facts(12, 50_000_000_000));
        assert!(r.has_code(Code::R001));
        assert!(!r.has_code(Code::R002));
    }

    #[test]
    fn degenerate_cluster_is_r004() {
        let g = reduction(4, 100, 2);
        let r = lint(&g, &facts(0, 1_000));
        assert!(r.has_code(Code::R004) && r.has_errors());
    }

    #[test]
    fn oversized_dataset_is_r003_info_on_shared_fs() {
        // 240 GB of small partials against 2 x 108 GB of cluster cache:
        // per-task pins stay tiny, only the aggregate bound trips.
        let g = reduction(2400, 100_000_000, 2);
        let f = EngineFacts {
            workers: 2,
            ..facts(12, 108_000_000_000)
        };
        let r = lint(&g, &f);
        assert!(r.has_code(Code::R003));
        assert!(!r.has_errors());
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::R003)
            .unwrap();
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn oversized_dataset_is_r003_warn_on_remote_inputs() {
        let g = reduction(2400, 100_000_000, 2);
        let f = EngineFacts {
            workers: 2,
            remote_inputs: true,
            ..facts(12, 108_000_000_000)
        };
        let d = lint(&g, &f);
        let diag = d
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::R003)
            .unwrap();
        assert_eq!(diag.severity, Severity::Warn);
    }
}
