//! Recovery-policy lints (R005–R007).
//!
//! These check the *pairing* of a fault plan with a recovery policy:
//! injected faults with no retry budget quarantine on the first hit,
//! a timeout below the category p99 kills healthy tasks, and
//! speculation needs a second worker to duplicate onto.

use crate::{Code, Diagnostic, EngineFacts, Locus, Report, Severity};

/// Run the recovery lints.
pub fn lint(facts: &EngineFacts) -> Report {
    let mut report = Report::new();

    // R005 — with faults injected and a zero retry budget, the first
    // transient failure (or timeout, or detected corruption) quarantines
    // the task and its whole consumer closure. Legitimate for a fragile
    // control arm, almost certainly not what a production config wants.
    if facts.chaos_enabled && facts.retry_budget == 0 {
        report.push(Diagnostic {
            code: Code::R005,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: "faults injected with a zero retry budget: the first task-level \
                      failure quarantines the task and its consumers"
                .into(),
            suggestion: Some("set recovery.retry_budget >= 1 (the default is 3)".into()),
        });
    }

    // R006 — the timeout is `timeout_factor × category p99`; a factor
    // below 1 abandons attempts that are *faster* than the category's
    // own observed tail, i.e. it kills healthy tasks.
    if facts.timeout_factor > 0.0 && facts.timeout_factor < 1.0 {
        report.push(Diagnostic {
            code: Code::R006,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: format!(
                "timeout factor {} is below 1x the category p99: healthy tasks in the \
                 tail will be killed and retried",
                facts.timeout_factor
            ),
            suggestion: Some("use a timeout factor >= 1 (hardened() uses 4)".into()),
        });
    }

    // R007 — a speculative duplicate must land on a *different* worker;
    // with one worker it can never launch and the config is dead weight.
    if facts.speculation && facts.workers <= 1 {
        report.push(Diagnostic {
            code: Code::R007,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: format!(
                "speculation enabled with {} worker(s): a duplicate attempt needs a \
                 second worker and will never launch",
                facts.workers
            ),
            suggestion: Some("add workers or disable recovery.speculation".into()),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_facts_lint_clean() {
        assert!(lint(&EngineFacts::default()).is_clean());
    }

    #[test]
    fn zero_budget_under_chaos_is_r005() {
        let f = EngineFacts {
            chaos_enabled: true,
            retry_budget: 0,
            ..EngineFacts::default()
        };
        let r = lint(&f);
        assert!(r.has_code(Code::R005) && !r.has_errors());
    }

    #[test]
    fn zero_budget_without_chaos_is_fine() {
        let f = EngineFacts {
            retry_budget: 0,
            ..EngineFacts::default()
        };
        assert!(lint(&f).is_clean());
    }

    #[test]
    fn sub_unity_timeout_factor_is_r006() {
        let f = EngineFacts {
            timeout_factor: 0.5,
            ..EngineFacts::default()
        };
        assert!(lint(&f).has_code(Code::R006));
        let ok = EngineFacts {
            timeout_factor: 4.0,
            ..EngineFacts::default()
        };
        assert!(lint(&ok).is_clean());
    }

    #[test]
    fn speculation_on_single_worker_is_r007() {
        let f = EngineFacts {
            speculation: true,
            workers: 1,
            ..EngineFacts::default()
        };
        assert!(lint(&f).has_code(Code::R007));
        let ok = EngineFacts {
            speculation: true,
            workers: 8,
            ..EngineFacts::default()
        };
        assert!(lint(&ok).is_clean());
    }
}
