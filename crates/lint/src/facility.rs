//! Facility lints (F codes): multi-tenant serving configurations that
//! can never work.
//!
//! A `vine-serve` facility admits submissions from weighted tenants onto
//! a shared cluster. The failure modes here are quieter than Fig 11's —
//! a tenant whose quota exceeds the cluster just waits forever, a
//! zero-weight tenant is silently starved — so the facility runs these
//! checks before accepting its first submission, mirroring the engine's
//! own pre-flight gate.

use crate::{fmt_bytes, Code, Diagnostic, Locus, Report, SchedulerFamily, Severity};

/// One tenant's admission knobs, as the facility sees them.
#[derive(Clone, Debug)]
pub struct TenantFacts {
    /// Display name (diagnostics only).
    pub name: String,
    /// Fair-share weight (larger = more throughput).
    pub weight: f64,
    /// Cap on cores this tenant may hold in flight at once.
    pub max_inflight_cores: u32,
    /// Cap on session-resident cache bytes attributed to this tenant.
    pub max_resident_bytes: u64,
}

/// A plain snapshot of the facility knobs the F lints read.
#[derive(Clone, Debug)]
pub struct FacilityFacts {
    /// Scheduler generation runs execute under.
    pub scheduler: SchedulerFamily,
    /// Warm-cache memoization requested.
    pub memoization: bool,
    /// Workers in the cluster.
    pub workers: usize,
    /// Cores per worker.
    pub cores_per_worker: u32,
    /// Disk (cache capacity) per worker, bytes.
    pub disk_per_worker: u64,
    /// Workers each admitted run receives.
    pub workers_per_run: usize,
    /// The tenants, in facility order.
    pub tenants: Vec<TenantFacts>,
}

impl FacilityFacts {
    fn total_cores(&self) -> u64 {
        self.workers as u64 * self.cores_per_worker as u64
    }

    fn aggregate_disk(&self) -> u64 {
        self.workers as u64 * self.disk_per_worker
    }
}

/// Run the facility lints.
pub fn lint_facility(facts: &FacilityFacts) -> Report {
    let mut report = Report::new();

    if facts.tenants.is_empty() {
        report.push(Diagnostic {
            code: Code::F002,
            severity: Severity::Error,
            locus: Locus::Config,
            message: "facility has no tenants; nothing can ever be admitted".into(),
            suggestion: Some("configure at least one tenant with a positive weight".into()),
        });
    }

    for (i, t) in facts.tenants.iter().enumerate() {
        if u64::from(t.max_inflight_cores) > facts.total_cores() {
            report.push(Diagnostic {
                code: Code::F001,
                severity: Severity::Error,
                locus: Locus::Tenant(i),
                message: format!(
                    "tenant '{}' allows {} in-flight cores but the cluster has only {}",
                    t.name,
                    t.max_inflight_cores,
                    facts.total_cores()
                ),
                suggestion: Some("cap the quota at the cluster's core count".into()),
            });
        }
        if !(t.weight.is_finite() && t.weight > 0.0) {
            report.push(Diagnostic {
                code: Code::F002,
                severity: Severity::Error,
                locus: Locus::Tenant(i),
                message: format!(
                    "tenant '{}' has fair-share weight {}; it will never be admitted",
                    t.name, t.weight
                ),
                suggestion: Some("give every tenant a positive finite weight".into()),
            });
        }
        if t.max_resident_bytes > facts.aggregate_disk() {
            report.push(Diagnostic {
                code: Code::F005,
                severity: Severity::Warn,
                locus: Locus::Tenant(i),
                message: format!(
                    "tenant '{}' may pin {} of cache but the cluster's disks total {}",
                    t.name,
                    fmt_bytes(t.max_resident_bytes),
                    fmt_bytes(facts.aggregate_disk())
                ),
                suggestion: Some("the quota is unreachable; lower it or add disk".into()),
            });
        }
    }

    if facts.memoization && facts.scheduler != SchedulerFamily::TaskVine {
        report.push(Diagnostic {
            code: Code::F003,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: format!(
                "memoization requested under {:?}, which retains nothing between runs",
                facts.scheduler
            ),
            suggestion: Some("run the facility on TaskVine (stack 3 or 4)".into()),
        });
    }

    if facts.workers_per_run == 0 || facts.workers_per_run > facts.workers {
        report.push(Diagnostic {
            code: Code::F004,
            severity: Severity::Error,
            locus: Locus::Cluster,
            message: format!(
                "each run wants {} workers but the cluster has {}",
                facts.workers_per_run, facts.workers
            ),
            suggestion: Some("shrink workers_per_run or grow the cluster".into()),
        });
    }

    report
}

/// A plain snapshot of the federation knobs the sharding lints read.
#[derive(Clone, Debug)]
pub struct ShardFacts {
    /// Independent facility shards in the federation.
    pub shards: usize,
    /// Whether a shared object tier is attached.
    pub store_enabled: bool,
    /// The tier's byte capacity (ignored when disabled).
    pub store_capacity_bytes: u64,
    /// The tier's egress bandwidth, bytes/second (ignored when disabled).
    pub store_bw: f64,
    /// Per-shard ingress bandwidth, bytes/second (ignored when disabled).
    pub shard_bw: f64,
    /// Cross-shard work stealing enabled.
    pub work_stealing: bool,
}

/// Run the per-shard facility lints plus the federation-level sharding
/// lints (F006–F008).
pub fn lint_sharded(facts: &FacilityFacts, shard_facts: &ShardFacts) -> Report {
    let mut report = lint_facility(facts);

    if shard_facts.shards == 0 {
        report.push(Diagnostic {
            code: Code::F006,
            severity: Severity::Error,
            locus: Locus::Config,
            message: "federation has zero shards; nothing can ever run".into(),
            suggestion: Some("configure at least one shard".into()),
        });
    }

    if shard_facts.store_enabled {
        let bad_bw = |bw: f64| !(bw.is_finite() && bw > 0.0);
        if shard_facts.store_capacity_bytes == 0 {
            report.push(Diagnostic {
                code: Code::F007,
                severity: Severity::Error,
                locus: Locus::Config,
                message: "shared object tier has zero capacity; every put bounces".into(),
                suggestion: Some("give the tier a positive byte capacity".into()),
            });
        }
        if bad_bw(shard_facts.store_bw) || bad_bw(shard_facts.shard_bw) {
            report.push(Diagnostic {
                code: Code::F007,
                severity: Severity::Error,
                locus: Locus::Config,
                message: format!(
                    "shared object tier bandwidth is invalid (store {} B/s, shard {} B/s)",
                    shard_facts.store_bw, shard_facts.shard_bw
                ),
                suggestion: Some("use positive finite bandwidths".into()),
            });
        }
    }

    if shard_facts.work_stealing && shard_facts.shards == 1 {
        report.push(Diagnostic {
            code: Code::F008,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: "work stealing enabled on a single-shard federation; there is never a victim"
                .into(),
            suggestion: Some("add shards or disable work stealing".into()),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> FacilityFacts {
        FacilityFacts {
            scheduler: SchedulerFamily::TaskVine,
            memoization: true,
            workers: 8,
            cores_per_worker: 12,
            disk_per_worker: 100_000_000_000,
            workers_per_run: 4,
            tenants: vec![
                TenantFacts {
                    name: "atlas".into(),
                    weight: 2.0,
                    max_inflight_cores: 48,
                    max_resident_bytes: 200_000_000_000,
                },
                TenantFacts {
                    name: "cms".into(),
                    weight: 1.0,
                    max_inflight_cores: 48,
                    max_resident_bytes: 200_000_000_000,
                },
            ],
        }
    }

    #[test]
    fn healthy_facility_is_clean() {
        assert!(lint_facility(&healthy()).is_clean());
    }

    #[test]
    fn over_quota_cores_fire_f001() {
        let mut f = healthy();
        f.tenants[0].max_inflight_cores = 1000;
        let r = lint_facility(&f);
        assert!(r.has_code(Code::F001) && r.has_errors());
    }

    #[test]
    fn zero_weight_fires_f002() {
        let mut f = healthy();
        f.tenants[1].weight = 0.0;
        assert!(lint_facility(&f).has_code(Code::F002));
        f.tenants[1].weight = f64::NAN;
        assert!(lint_facility(&f).has_code(Code::F002));
    }

    #[test]
    fn no_tenants_fires_f002() {
        let mut f = healthy();
        f.tenants.clear();
        let r = lint_facility(&f);
        assert!(r.has_code(Code::F002) && r.has_errors());
    }

    #[test]
    fn memoization_off_taskvine_fires_f003() {
        let mut f = healthy();
        f.scheduler = SchedulerFamily::WorkQueue;
        let r = lint_facility(&f);
        assert!(r.has_code(Code::F003));
        assert!(!r.has_errors(), "F003 is advisory");
    }

    #[test]
    fn infeasible_slice_fires_f004() {
        let mut f = healthy();
        f.workers_per_run = 9;
        assert!(lint_facility(&f).has_code(Code::F004));
        f.workers_per_run = 0;
        assert!(lint_facility(&f).has_code(Code::F004));
    }

    #[test]
    fn oversized_byte_quota_fires_f005() {
        let mut f = healthy();
        f.tenants[0].max_resident_bytes = 10_000_000_000_000;
        let r = lint_facility(&f);
        assert!(r.has_code(Code::F005));
        assert!(!r.has_errors(), "F005 is advisory");
    }

    fn healthy_shards() -> ShardFacts {
        ShardFacts {
            shards: 4,
            store_enabled: true,
            store_capacity_bytes: 200_000_000_000,
            store_bw: 12.5e9,
            shard_bw: 1.25e9,
            work_stealing: true,
        }
    }

    #[test]
    fn healthy_federation_is_clean() {
        assert!(lint_sharded(&healthy(), &healthy_shards()).is_clean());
    }

    #[test]
    fn zero_shards_fire_f006() {
        let mut s = healthy_shards();
        s.shards = 0;
        let r = lint_sharded(&healthy(), &s);
        assert!(r.has_code(Code::F006) && r.has_errors());
    }

    #[test]
    fn broken_store_fires_f007() {
        let mut s = healthy_shards();
        s.store_capacity_bytes = 0;
        assert!(lint_sharded(&healthy(), &s).has_code(Code::F007));

        let mut s = healthy_shards();
        s.store_bw = 0.0;
        assert!(lint_sharded(&healthy(), &s).has_code(Code::F007));
        s.store_bw = f64::NAN;
        assert!(lint_sharded(&healthy(), &s).has_code(Code::F007));

        let mut s = healthy_shards();
        s.shard_bw = -1.0;
        let r = lint_sharded(&healthy(), &s);
        assert!(r.has_code(Code::F007) && r.has_errors());

        // A disabled store never lints its knobs.
        let mut s = healthy_shards();
        s.store_enabled = false;
        s.store_capacity_bytes = 0;
        s.store_bw = 0.0;
        assert!(lint_sharded(&healthy(), &s).is_clean());
    }

    #[test]
    fn single_shard_stealing_fires_f008() {
        let mut s = healthy_shards();
        s.shards = 1;
        let r = lint_sharded(&healthy(), &s);
        assert!(r.has_code(Code::F008));
        assert!(!r.has_errors(), "F008 is advisory");

        s.work_stealing = false;
        assert!(lint_sharded(&healthy(), &s).is_clean());
    }
}
