#![deny(unsafe_code)]

//! # vine-lint — static pre-flight analysis
//!
//! The paper's headline failures are statically predictable: Fig 11's
//! single-node reduction pins more partials on one worker than its 700 GB
//! disk holds, Dask.Distributed is "unable to run" TB-scale DV3 inputs,
//! and §IV warns about misconfigured stacks (serverless without a
//! LibraryTask, unthrottled peer transfers). This crate analyzes a
//! `(TaskGraph, EngineFacts)` pair *before* any event is simulated or any
//! thread spawned and reports problems as structured [`Diagnostic`]s.
//!
//! Four analysis families, one module each:
//!
//! * [`graph`] — structural lints (G codes): broken producer/consumer
//!   links, cycles, duplicate file names, orphan tasks, unconsumed
//!   inputs, unbounded reduction fan-in;
//! * [`resources`] — feasibility lints (R codes): per-worker cache
//!   footprint bounds along the reduction frontier vs. disk capacity,
//!   single tasks no node can hold, dataset size vs. cluster capacity;
//! * [`config`] — consistency lints (C codes): knob combinations that
//!   deadlock (a peer-transfer throttle of zero), silently do nothing
//!   (replication without peer transfers), or are policy-infeasible
//!   (Dask.Distributed beyond its stable input scale);
//! * [`determinism`] — reproducibility lints (D codes): trace and
//!   recovery settings that make repeated runs hard to compare;
//! * [`facility`] — multi-tenant serving lints (F codes): tenant quotas
//!   or fair-share weights that can never be satisfied, and per-run
//!   worker slices the cluster cannot provide (checked by `vine-serve`
//!   before a facility accepts submissions);
//! * [`watch`] — standing-submission lints (W codes): reactive
//!   configurations that silently go stale, watch datasets the template
//!   never reads, or debounce without a bound (checked by `vine-watch`
//!   when a standing submission registers).
//!
//! The scheduler side of the world arrives as [`EngineFacts`], a plain
//! snapshot of the engine knobs this crate needs. `vine-core` provides
//! `EngineConfig::lint_facts()` to build one, keeping the dependency
//! arrow pointing `vine-core → vine-lint` and never back.
//!
//! Entry points: [`lint_graph`] for graph-only checks (used by
//! `vine-exec`, which has no engine config), and [`lint_all`] for the
//! full battery (used by the engine's pre-flight gate and the
//! `vine-sim --lint` CLI).

pub mod config;
pub mod determinism;
pub mod facility;
pub mod graph;
pub mod recovery;
pub mod resources;
pub mod watch;

pub use facility::{lint_facility, lint_sharded, FacilityFacts, ShardFacts, TenantFacts};
pub use watch::{lint_watch, StandingFacts, WatchFacts};

use std::fmt;

use vine_dag::{FileId, TaskGraph, TaskId};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; never blocks a run.
    Info,
    /// Suspicious configuration; runs proceed but the finding is traced.
    Warn,
    /// The run cannot succeed (or cannot be trusted); pre-flight gates
    /// refuse to start.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes, grouped by family. The code, not the message
/// text, is the contract: tests and tooling match on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// A task↔file link is broken or refers to a nonexistent node.
    G001,
    /// The graph contains a dependency cycle.
    G002,
    /// Two files share one logical name (cachename collision).
    G003,
    /// A task produces no outputs: its work is unobservable.
    G004,
    /// An external input file is never consumed.
    G005,
    /// An accumulation's fan-in exceeds the safe reduction arity.
    G006,
    /// The graph has no tasks.
    G007,
    /// Peak per-worker cache footprint bound exceeds worker disk.
    R001,
    /// A single task's input+output pin set exceeds worker disk.
    R002,
    /// The dataset exceeds the cluster's aggregate cache capacity.
    R003,
    /// Degenerate cluster: no workers, cores, or disk.
    R004,
    /// Faults injected with a zero retry budget: first failure
    /// quarantines (or aborts).
    R005,
    /// Task timeout set below the category's p99 runtime estimate:
    /// healthy tasks will be killed as stragglers.
    R006,
    /// Speculative re-execution enabled on a single-worker cluster:
    /// there is never a second worker to speculate on.
    R007,
    /// Serverless mode with a zero library instantiation cost.
    C001,
    /// Worker-local import distribution without serverless execution.
    C002,
    /// Peer transfers enabled but throttled to zero concurrent streams.
    C003,
    /// Shared-FS staging throttled to zero concurrent streams.
    C004,
    /// Dask.Distributed with more input than its stable scale.
    C005,
    /// Replication target unreachable (exceeds worker count).
    C006,
    /// Scheduler/data-movement mismatch (peer transfers vs. generation).
    C007,
    /// Replication requested but the size cap excludes every file.
    C008,
    /// Sole-copy intermediates under preemption: rerun cascades.
    D001,
    /// Gantt tracing at a scale where the trace dwarfs the run.
    D002,
    /// Figure timeline tracing disabled: runs cannot be compared.
    D003,
    /// A tenant's in-flight core quota exceeds the whole cluster.
    F001,
    /// A tenant has zero (or invalid) fair-share weight, or the facility
    /// has no tenants at all: nothing can ever be admitted for it.
    F002,
    /// Warm-cache memoization requested under a non-TaskVine scheduler.
    F003,
    /// Per-run worker slice is infeasible (zero, or larger than the
    /// cluster).
    F004,
    /// A tenant's resident-byte quota exceeds the cluster's aggregate
    /// disk.
    F005,
    /// Federation has zero shards: no facility can ever run anything.
    F006,
    /// Shared object tier configured with zero capacity or a
    /// non-positive/non-finite bandwidth: every fetch stalls or fails.
    F007,
    /// Cross-shard work stealing enabled on a single-shard federation:
    /// there is never another shard to steal from.
    F008,
    /// A standing submission has no automatic trigger (`Manual`): results
    /// go stale silently as the dataset grows.
    W001,
    /// A standing submission watches a dataset its graph template never
    /// reads: appends fire refreshes that recompute nothing.
    W002,
    /// A debounced trigger with no pending cap: a steady trickle of
    /// appends postpones the refresh forever.
    W003,
}

impl Code {
    /// Every code, in report order — drives the README reference table.
    pub const ALL: [Code; 36] = [
        Code::G001,
        Code::G002,
        Code::G003,
        Code::G004,
        Code::G005,
        Code::G006,
        Code::G007,
        Code::R001,
        Code::R002,
        Code::R003,
        Code::R004,
        Code::R005,
        Code::R006,
        Code::R007,
        Code::C001,
        Code::C002,
        Code::C003,
        Code::C004,
        Code::C005,
        Code::C006,
        Code::C007,
        Code::C008,
        Code::D001,
        Code::D002,
        Code::D003,
        Code::F001,
        Code::F002,
        Code::F003,
        Code::F004,
        Code::F005,
        Code::F006,
        Code::F007,
        Code::F008,
        Code::W001,
        Code::W002,
        Code::W003,
    ];

    /// One-line description (the README reference text).
    pub fn describe(self) -> &'static str {
        match self {
            Code::G001 => "broken task\u{2194}file link or reference to a nonexistent node",
            Code::G002 => "task graph contains a dependency cycle",
            Code::G003 => "two files share one logical name (cachename collision)",
            Code::G004 => "task produces no outputs; its work is unobservable",
            Code::G005 => "external input file is never consumed",
            Code::G006 => "accumulation fan-in exceeds the safe reduction arity",
            Code::G007 => "graph has no tasks",
            Code::R001 => "peak per-worker cache footprint bound exceeds worker disk",
            Code::R002 => "one task's inputs+outputs exceed a worker's disk",
            Code::R003 => "dataset exceeds the cluster's aggregate cache capacity",
            Code::R004 => "degenerate cluster (no workers, cores, or disk)",
            Code::R005 => "faults injected with a zero retry budget: first failure quarantines",
            Code::R006 => "task timeout below the category p99 estimate kills healthy tasks",
            Code::R007 => "speculation on a single-worker cluster can never launch a duplicate",
            Code::C001 => "serverless mode with zero library instantiation cost",
            Code::C002 => "worker-local imports without serverless execution",
            Code::C003 => "peer transfers enabled but throttled to zero",
            Code::C004 => "shared-FS staging throttled to zero",
            Code::C005 => "Dask.Distributed beyond its stable input scale",
            Code::C006 => "replication target exceeds the worker count",
            Code::C007 => "peer-transfer setting contradicts the scheduler generation",
            Code::C008 => "replication enabled but the size cap excludes every file",
            Code::D001 => "sole-copy intermediates under preemption (rerun cascades)",
            Code::D002 => "gantt tracing at a scale where the trace dwarfs the run",
            Code::D003 => "timeline tracing disabled; runs cannot be compared",
            Code::F001 => "tenant in-flight core quota exceeds the whole cluster",
            Code::F002 => "tenant with zero fair-share weight (or no tenants): starved forever",
            Code::F003 => "warm-cache memoization under a non-TaskVine scheduler does nothing",
            Code::F004 => "per-run worker slice is zero or larger than the cluster",
            Code::F005 => "tenant resident-byte quota exceeds the cluster's aggregate disk",
            Code::F006 => "federation has zero shards; nothing can ever run",
            Code::F007 => "shared object tier with zero capacity or invalid bandwidth",
            Code::F008 => "work stealing on a single-shard federation has no victim",
            Code::W001 => "standing submission without an automatic trigger goes stale silently",
            Code::W002 => "standing submission watches a dataset its template never reads",
            Code::W003 => "unbounded debounce: a steady trickle postpones refresh forever",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Where a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locus {
    /// The graph as a whole.
    Graph,
    /// One task.
    Task(TaskId),
    /// One file.
    File(FileId),
    /// The engine configuration.
    Config,
    /// The cluster allocation.
    Cluster,
    /// One facility tenant (by index in the facility config).
    Tenant(usize),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Graph => write!(f, "graph"),
            Locus::Task(t) => write!(f, "task:{}", t.0),
            Locus::File(fid) => write!(f, "file:{}", fid.0),
            Locus::Config => write!(f, "config"),
            Locus::Cluster => write!(f, "cluster"),
            Locus::Tenant(i) => write!(f, "tenant:{i}"),
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code (the machine contract).
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// What it points at.
    pub locus: Locus,
    /// What is wrong, with the numbers that show it.
    pub message: String,
    /// What to do about it, if there is a known fix.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.severity, self.code, self.locus, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " ({s})")?;
        }
        Ok(())
    }
}

/// An ordered collection of findings from one lint pass.
#[derive(Clone, Debug, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Absorb another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Findings at `Severity::Error`.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Findings at `Severity::Warn`.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// True if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True if nothing was found at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True if a finding with this code exists.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Counts as `(errors, warnings, infos)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// Human-readable multi-line report with a trailing summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!("{d}\n"));
        }
        let (e, w, i) = self.counts();
        out.push_str(&format!(
            "lint: {e} error(s), {w} warning(s), {i} info(s)\n"
        ));
        out
    }

    /// Machine-readable format: one tab-separated line per diagnostic
    /// (`code  severity  locus  message  suggestion`), no summary line.
    pub fn to_machine(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                d.code,
                d.severity,
                d.locus,
                d.message,
                d.suggestion.as_deref().unwrap_or("-")
            ));
        }
        out
    }
}

/// Which scheduler generation the engine will run — the subset of
/// `SchedulerKind` the lints care about, restated here so the dependency
/// arrow stays `vine-core → vine-lint`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerFamily {
    /// Manager-centric Work Queue (stacks 1–2).
    WorkQueue,
    /// TaskVine with node-local caches and peer transfers (stacks 3–4).
    TaskVine,
    /// Dask's native Dask.Distributed scheduler.
    DaskDistributed,
}

/// A plain snapshot of the engine and cluster knobs the lints read.
///
/// Built by `EngineConfig::lint_facts()` in `vine-core`; constructible by
/// hand in tests. For Dask.Distributed the builder mirrors the engine's
/// share-nothing split (each physical worker becomes `cores` single-core
/// workers whose capacity is `mem/cores`), so the resource lints see the
/// same worker geometry the simulation will use.
#[derive(Clone, Debug)]
pub struct EngineFacts {
    /// Scheduler generation.
    pub scheduler: SchedulerFamily,
    /// Serverless FunctionCalls (vs. conventional standard tasks).
    pub serverless: bool,
    /// Imports hoisted into the LibraryTask preamble.
    pub hoist_imports: bool,
    /// Task environments read from worker-local storage.
    pub import_worker_local: bool,
    /// External inputs fetched over the WAN rather than the shared FS.
    pub remote_inputs: bool,
    /// Worker↔worker transfers enabled.
    pub peer_transfers: bool,
    /// Concurrent outgoing peer transfers allowed per worker.
    pub max_peer_transfers_per_worker: usize,
    /// Concurrent shared-FS staging streams allowed.
    pub max_concurrent_stagings: usize,
    /// Target replica count for intermediate files (1 = off).
    pub replica_target: u32,
    /// Only intermediates at or below this size are replicated.
    pub replicate_max_bytes: u64,
    /// LibraryTask instantiation cost, seconds.
    pub library_startup_s: f64,
    /// Worker preemption rate, events per second (0 = none).
    pub preemption_rate_per_sec: f64,
    /// A chaos fault plan is attached (any fault family).
    pub chaos_enabled: bool,
    /// Combined per-attempt transient task-failure probability (0 = none).
    pub chaos_task_failure_prob: f64,
    /// Recovery policy: task-level failures tolerated before quarantine.
    pub retry_budget: u32,
    /// Recovery policy: attempts are abandoned past this multiple of the
    /// category p99 runtime estimate (0 = timeouts off).
    pub timeout_factor: f64,
    /// Recovery policy: speculative re-execution of stragglers enabled.
    pub speculation: bool,
    /// Running/waiting timeline tracing enabled.
    pub trace_timeline: bool,
    /// Per-worker gantt tracing enabled.
    pub trace_gantt: bool,
    /// Dask.Distributed's stable input limit, if the policy is active.
    pub dask_unstable_above_bytes: Option<u64>,
    /// Worker count (post share-nothing split for Dask).
    pub workers: usize,
    /// Cores per worker.
    pub cores_per_worker: u32,
    /// Memory per worker, bytes.
    pub mem_per_worker: u64,
    /// Disk (cache capacity) per worker, bytes.
    pub disk_per_worker: u64,
}

impl Default for EngineFacts {
    /// A reference TaskVine (stack 3/4-like) configuration on four
    /// DV3-class workers — a healthy fixture tests perturb.
    fn default() -> Self {
        EngineFacts {
            scheduler: SchedulerFamily::TaskVine,
            serverless: true,
            hoist_imports: true,
            import_worker_local: true,
            remote_inputs: false,
            peer_transfers: true,
            max_peer_transfers_per_worker: 3,
            max_concurrent_stagings: 8,
            replica_target: 2,
            replicate_max_bytes: 512 * 1_000_000,
            library_startup_s: 2.0,
            preemption_rate_per_sec: 0.0,
            chaos_enabled: false,
            chaos_task_failure_prob: 0.0,
            retry_budget: 3,
            timeout_factor: 0.0,
            speculation: false,
            trace_timeline: true,
            trace_gantt: false,
            dask_unstable_above_bytes: None,
            workers: 4,
            cores_per_worker: 12,
            mem_per_worker: 96_000_000_000,
            disk_per_worker: 108_000_000_000,
        }
    }
}

/// Format a byte count the way the reports do (GB with one decimal when
/// large, raw bytes when small).
pub(crate) fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000_000 {
        format!("{:.0} GB", b as f64 / 1e9)
    } else if b >= 1_000_000_000 {
        format!("{:.1} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.0} MB", b as f64 / 1e6)
    } else {
        format!("{b} B")
    }
}

/// Run the graph-structure lints alone (no engine facts needed).
pub fn lint_graph(graph: &TaskGraph) -> Report {
    graph::lint(graph)
}

/// Run every lint family against a graph and the engine facts.
pub fn lint_all(graph: &TaskGraph, facts: &EngineFacts) -> Report {
    let mut report = graph::lint(graph);
    report.merge(resources::lint(graph, facts));
    report.merge(config::lint(graph, facts));
    report.merge(determinism::lint(graph, facts));
    report.merge(recovery::lint(facts));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_queries() {
        let mut r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic {
            code: Code::C003,
            severity: Severity::Error,
            locus: Locus::Config,
            message: "x".into(),
            suggestion: None,
        });
        r.push(Diagnostic {
            code: Code::D001,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: "y".into(),
            suggestion: Some("z".into()),
        });
        assert!(r.has_errors() && r.has_code(Code::C003) && !r.has_code(Code::G002));
        assert_eq!(r.counts(), (1, 1, 0));
        let text = r.to_text();
        assert!(text.contains("error C003 [config]: x"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        let machine = r.to_machine();
        assert_eq!(machine.lines().count(), 2);
        assert!(machine.starts_with("C003\terror\tconfig\tx\t-"));
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warn && Severity::Warn > Severity::Info);
    }

    #[test]
    fn every_code_has_a_description() {
        for c in Code::ALL {
            assert!(!c.describe().is_empty(), "{c}");
        }
    }
}
