//! Determinism and reproducibility lints (D codes).
//!
//! The simulator itself is deterministic given a seed, but some
//! configurations make *comparisons between runs* fragile: sole-copy
//! intermediates under preemption mean a single unlucky draw cascades
//! into lineage re-runs that dominate the makespan, and trace settings
//! decide whether two runs can be compared at all.

use vine_dag::TaskGraph;

use crate::{Code, Diagnostic, EngineFacts, Locus, Report, SchedulerFamily, Severity};

/// Task count above which a gantt trace (one interval per execution per
/// worker) stops being "cheap" (`D002`).
pub const GANTT_TRACE_TASK_BOUND: usize = 100_000;

/// Run the determinism lints.
pub fn lint(graph: &TaskGraph, facts: &EngineFacts) -> Report {
    let mut report = Report::new();

    // D001 — TaskVine keeps intermediates on worker disks; with
    // preemption on and no replication, losing the sole copy of a partial
    // triggers lineage re-runs whose depth depends on one random draw.
    // Results stay deterministic per seed but vary wildly across seeds.
    if facts.scheduler == SchedulerFamily::TaskVine
        && facts.preemption_rate_per_sec > 0.0
        && facts.replica_target < 2
    {
        report.push(Diagnostic {
            code: Code::D001,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: "preemption with sole-copy intermediates: one loss cascades into \
                      lineage re-runs, making makespans highly seed-sensitive"
                .into(),
            suggestion: Some("set replica_target >= 2 (stacks 3-4 do)".into()),
        });
    }

    // D002 — gantt traces record one interval per task execution per
    // worker; at 185 K tasks the trace dwarfs the simulation state.
    if facts.trace_gantt && graph.task_count() > GANTT_TRACE_TASK_BOUND {
        report.push(Diagnostic {
            code: Code::D002,
            severity: Severity::Info,
            locus: Locus::Config,
            message: format!(
                "gantt tracing with {} tasks (> {GANTT_TRACE_TASK_BOUND}) is expensive",
                graph.task_count()
            ),
            suggestion: Some("disable trace.gantt for production-scale runs".into()),
        });
    }

    // D003 — without the running/waiting timeline there is nothing to
    // diff two runs by; figure reproduction and regression comparisons
    // silently degrade to makespan-only.
    if !facts.trace_timeline {
        report.push(Diagnostic {
            code: Code::D003,
            severity: Severity::Warn,
            locus: Locus::Config,
            message: "timeline tracing disabled: runs cannot be compared series-by-series".into(),
            suggestion: Some("leave trace.timeline on (the default)".into()),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_dag::{TaskGraph, TaskKind};

    fn graph(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let e = g.add_external_file("in", 100);
        for i in 0..n {
            g.add_task(format!("t{i}"), TaskKind::Process, vec![e], &[1], 1.0);
        }
        g
    }

    #[test]
    fn reference_facts_lint_clean() {
        assert!(lint(&graph(4), &EngineFacts::default()).is_clean());
    }

    #[test]
    fn sole_copy_under_preemption_is_d001() {
        let f = EngineFacts {
            preemption_rate_per_sec: 1e-4,
            replica_target: 1,
            ..EngineFacts::default()
        };
        let r = lint(&graph(4), &f);
        assert!(r.has_code(Code::D001) && !r.has_errors());
    }

    #[test]
    fn replication_suppresses_d001() {
        let f = EngineFacts {
            preemption_rate_per_sec: 1e-4,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(4), &f).is_clean());
    }

    #[test]
    fn huge_gantt_trace_is_d002() {
        let f = EngineFacts {
            trace_gantt: true,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(GANTT_TRACE_TASK_BOUND + 1), &f).has_code(Code::D002));
        assert!(lint(&graph(10), &f).is_clean());
    }

    #[test]
    fn disabled_timeline_is_d003() {
        let f = EngineFacts {
            trace_timeline: false,
            ..EngineFacts::default()
        };
        assert!(lint(&graph(4), &f).has_code(Code::D003));
    }
}
