//! Graph-structure lints (G codes).
//!
//! Subsumes `TaskGraph::validate`: the typed [`ValidateError`] becomes a
//! `G001`/`G002` diagnostic, and further structural smells the validator
//! does not treat as fatal — duplicate logical file names, output-less
//! tasks, never-consumed inputs, unbounded reduction fan-in — are
//! reported alongside.

use std::collections::BTreeMap;

use vine_dag::{TaskGraph, TaskKind, ValidateError};

use crate::{Code, Diagnostic, Locus, Report, Severity};

/// Fan-in above which a single accumulation is flagged (`G006`). The
/// paper's tree rewrites use arities 4–16; anything past this bound is
/// in single-node-reduction territory and concentrates partials on one
/// worker (Fig 11's failure shape).
pub const MAX_SAFE_FAN_IN: usize = 64;

/// Run the structural lints.
pub fn lint(graph: &TaskGraph) -> Report {
    let mut report = Report::new();

    // G001/G002 — link consistency and acyclicity, from the typed
    // validator. A broken graph makes the remaining lints unreliable, so
    // report and stop here.
    if let Err(e) = graph.validate() {
        let (code, locus) = match e {
            ValidateError::Cycle => (Code::G002, Locus::Graph),
            ValidateError::UnknownProducer { file, .. }
            | ValidateError::ProducerLinkBroken { file, .. }
            | ValidateError::UnknownConsumer { file, .. }
            | ValidateError::ConsumerLinkBroken { file, .. } => (Code::G001, Locus::File(file)),
            ValidateError::UnknownInput { task, .. }
            | ValidateError::InputLinkBroken { task, .. }
            | ValidateError::UnknownOutput { task, .. }
            | ValidateError::OutputLinkBroken { task, .. } => (Code::G001, Locus::Task(task)),
        };
        report.push(Diagnostic {
            code,
            severity: Severity::Error,
            locus,
            message: e.to_string(),
            suggestion: Some("build graphs through the TaskGraph builder API".into()),
        });
        return report;
    }

    // G007 — nothing to run.
    if graph.task_count() == 0 {
        report.push(Diagnostic {
            code: Code::G007,
            severity: Severity::Info,
            locus: Locus::Graph,
            message: "graph has no tasks; the run will complete immediately".into(),
            suggestion: None,
        });
        return report;
    }

    // G003 — duplicate logical names. The engine derives cache keys from
    // file names, so two distinct files with one name would collide in
    // every worker cache and in transfer bookkeeping.
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for f in graph.files() {
        *by_name.entry(f.name.as_str()).or_insert(0) += 1;
    }
    for f in graph.files() {
        if by_name.get(f.name.as_str()).copied().unwrap_or(0) > 1 {
            report.push(Diagnostic {
                code: Code::G003,
                severity: Severity::Error,
                locus: Locus::File(f.id),
                message: format!("file name \"{}\" is shared by multiple files", f.name),
                suggestion: Some("give every file a unique logical name".into()),
            });
            // Flag the name once, not once per duplicate.
            by_name.insert(f.name.as_str(), 0);
        }
    }

    for t in graph.tasks() {
        // G004 — a task whose outputs vanish: nothing downstream, nothing
        // reported.
        if t.outputs.is_empty() {
            report.push(Diagnostic {
                code: Code::G004,
                severity: Severity::Warn,
                locus: Locus::Task(t.id),
                message: format!("task \"{}\" produces no outputs", t.name),
                suggestion: Some("drop the task or declare its result files".into()),
            });
        }
        // G006 — reduction fan-in bound.
        if t.kind == TaskKind::Accumulate && t.inputs.len() > MAX_SAFE_FAN_IN {
            report.push(Diagnostic {
                code: Code::G006,
                severity: Severity::Warn,
                locus: Locus::Task(t.id),
                message: format!(
                    "accumulation \"{}\" has fan-in {} (> {MAX_SAFE_FAN_IN})",
                    t.name,
                    t.inputs.len()
                ),
                suggestion: Some(
                    "rewrite as a bounded-arity tree (rewrite_wide_reductions)".into(),
                ),
            });
        }
    }

    // G005 — staged inputs nobody reads.
    for f in graph.external_files() {
        if f.consumers.is_empty() {
            report.push(Diagnostic {
                code: Code::G005,
                severity: Severity::Warn,
                locus: Locus::File(f.id),
                message: format!("external input \"{}\" is never consumed", f.name),
                suggestion: Some("remove the file from the plan".into()),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_dag::TaskGraph;

    fn small_pipeline() -> TaskGraph {
        let mut g = TaskGraph::new();
        let parts: Vec<_> = (0..4)
            .map(|i| g.add_external_file(format!("p{i}"), 100))
            .collect();
        let partials = g.map_partitions("proc", &parts, 10, 1.0);
        g.add_task("acc", TaskKind::Accumulate, partials, &[1], 0.5);
        g
    }

    #[test]
    fn clean_pipeline_lints_clean() {
        assert!(lint(&small_pipeline()).is_clean());
    }

    #[test]
    fn empty_graph_is_info_only() {
        let r = lint(&TaskGraph::new());
        assert!(r.has_code(Code::G007) && !r.has_errors());
    }

    #[test]
    fn severed_consumer_link_is_g001() {
        let mut g = small_pipeline();
        let (tasks, _) = g.raw_parts_mut();
        tasks[0].inputs.clear();
        let r = lint(&g);
        assert!(r.has_code(Code::G001) && r.has_errors());
    }

    #[test]
    fn duplicate_file_name_is_g003() {
        let mut g = small_pipeline();
        let (_, files) = g.raw_parts_mut();
        files[1].name = files[0].name.clone();
        let r = lint(&g);
        assert!(r.has_code(Code::G003) && r.has_errors());
        // One diagnostic per colliding name, not per file.
        assert_eq!(
            r.diagnostics()
                .iter()
                .filter(|d| d.code == Code::G003)
                .count(),
            1
        );
    }

    #[test]
    fn output_less_task_is_g004() {
        let mut g = small_pipeline();
        let ext = g.add_external_file("extra", 5);
        g.add_task("sink", TaskKind::Generic, vec![ext], &[], 1.0);
        let r = lint(&g);
        assert!(r.has_code(Code::G004) && !r.has_errors());
    }

    #[test]
    fn unconsumed_external_is_g005() {
        let mut g = small_pipeline();
        g.add_external_file("unused", 5);
        let r = lint(&g);
        assert!(r.has_code(Code::G005) && !r.has_errors());
    }

    #[test]
    fn wide_accumulation_is_g006() {
        let mut g = TaskGraph::new();
        let parts: Vec<_> = (0..100)
            .map(|i| g.add_external_file(format!("p{i}"), 100))
            .collect();
        let partials = g.map_partitions("proc", &parts, 10, 1.0);
        g.add_task("acc", TaskKind::Accumulate, partials, &[1], 0.5);
        let r = lint(&g);
        assert!(r.has_code(Code::G006) && !r.has_errors());
    }

    #[test]
    fn cycle_is_g002() {
        use vine_dag::{FileId, TaskId};
        let mut g = small_pipeline();
        // Make task 0 consume its own output's descendant: wire the final
        // accumulate output back into task 0's inputs.
        let last_file = FileId(g.file_count() as u32 - 1);
        let (tasks, files) = g.raw_parts_mut();
        tasks[0].inputs.push(last_file);
        files[last_file.0 as usize].consumers.push(TaskId(0));
        let r = lint(&g);
        assert!(r.has_code(Code::G002) && r.has_errors());
    }
}
