//! [`FigureRecorder`] — the bridge from observability events to the
//! `vine-simcore::trace` sinks backing the paper's figures.
//!
//! The engine used to poke each sink directly; now it emits typed spans,
//! instants, and counter samples once, and this recorder folds them into
//! the figure sinks. The mapping:
//!
//! * counter [`counter::RUNNING`] / [`counter::WAITING`] → the Fig 12/15
//!   concurrency time-series;
//! * counter [`counter::CACHE_USED`] on worker lane `w+1` → the Fig 11
//!   per-worker cache-occupancy series;
//! * [`category::TASK`] spans → the Fig 13 Gantt trace (entity =
//!   `track - 1`, tag from the `"tag"` attribute) and the Fig 8 task-time
//!   histogram;
//! * [`category::TRANSFER`] instants (attrs `src`, `dst`, `bytes`) → the
//!   Fig 7 transfer matrix;
//! * [`category::WORKER`] instants named [`CACHE_OVERFLOW`] → the
//!   cache-failure event list.

use vine_simcore::trace::{IntervalTrace, LogHistogram, TimeSeries, TransferMatrix};
use vine_simcore::SimTime;

use crate::recorder::Recorder;
use crate::span::{category, counter, InstantEvent, Span};

/// Name of the worker-lifecycle instant marking a cache-overflow kill.
pub const CACHE_OVERFLOW: &str = "cache.overflow";

/// The figure sinks a run hands back, in the shape `RunResult` carries.
#[derive(Clone, Debug)]
pub struct FigureSinks {
    /// Tasks-running step series (Figs 12, 15).
    pub running_series: TimeSeries,
    /// Tasks-waiting step series (Fig 12).
    pub waiting_series: TimeSeries,
    /// Per-worker busy intervals (Fig 13), when enabled.
    pub gantt: Option<IntervalTrace>,
    /// Node-pair transfer bytes (Fig 7), when enabled.
    pub transfers: Option<TransferMatrix>,
    /// Per-worker cache occupancy over time (Fig 11), when enabled.
    pub cache_series: Option<Vec<TimeSeries>>,
    /// Log-binned task wall times (Fig 8), when enabled.
    pub task_time_hist: Option<LogHistogram>,
    /// `(worker, time)` of each cache-overflow kill.
    pub cache_failures: Vec<(usize, SimTime)>,
}

/// A [`Recorder`] that folds events into [`FigureSinks`].
#[derive(Clone, Debug)]
pub struct FigureRecorder {
    sinks: FigureSinks,
}

impl FigureRecorder {
    /// A recorder with the selected sinks enabled. `transfer_nodes` /
    /// `cache_workers` size the matrix and per-worker series
    /// (`Some(node or worker count)` enables them).
    pub fn new(
        gantt: bool,
        transfer_nodes: Option<usize>,
        cache_workers: Option<usize>,
        task_times: bool,
    ) -> Self {
        FigureRecorder {
            sinks: FigureSinks {
                running_series: TimeSeries::new(),
                waiting_series: TimeSeries::new(),
                gantt: gantt.then(IntervalTrace::new),
                transfers: transfer_nodes.map(TransferMatrix::new),
                cache_series: cache_workers.map(|n| vec![TimeSeries::new(); n]),
                // Same binning the engine always used for Fig 8.
                task_time_hist: task_times.then(|| LogHistogram::new(0.0625, 16)),
                cache_failures: Vec::new(),
            },
        }
    }

    /// Finish recording and hand back the sinks.
    pub fn into_sinks(self) -> FigureSinks {
        self.sinks
    }

    /// Borrow the sinks mid-run (tests, progress probes).
    pub fn sinks(&self) -> &FigureSinks {
        &self.sinks
    }

    /// True if task spans feed an enabled sink (Gantt or histogram) —
    /// instrumentation skips building spans otherwise.
    pub fn wants_task_spans(&self) -> bool {
        self.sinks.gantt.is_some() || self.sinks.task_time_hist.is_some()
    }

    /// True if transfer instants feed the matrix.
    pub fn wants_transfers(&self) -> bool {
        self.sinks.transfers.is_some()
    }

    /// True if cache-occupancy counters feed per-worker series.
    pub fn wants_cache(&self) -> bool {
        self.sinks.cache_series.is_some()
    }
}

impl Recorder for FigureRecorder {
    fn span(&mut self, span: Span) {
        if span.category != category::TASK {
            return;
        }
        if let Some(h) = &mut self.sinks.task_time_hist {
            h.record(span.dur_us() as f64 / 1e6);
        }
        if let Some(g) = &mut self.sinks.gantt {
            if span.track > 0 {
                let tag = span.attr_u64("tag").unwrap_or(0) as u32;
                g.push(
                    span.track as usize - 1,
                    SimTime::from_micros(span.start_us),
                    SimTime::from_micros(span.end_us),
                    tag,
                );
            }
        }
    }

    fn instant(&mut self, ev: InstantEvent) {
        match ev.category {
            category::TRANSFER => {
                if let Some(m) = &mut self.sinks.transfers {
                    if let (Some(src), Some(dst), Some(bytes)) =
                        (ev.attr_u64("src"), ev.attr_u64("dst"), ev.attr_u64("bytes"))
                    {
                        m.add(src as usize, dst as usize, bytes);
                    }
                }
            }
            category::WORKER if ev.name == CACHE_OVERFLOW && ev.track > 0 => {
                self.sinks
                    .cache_failures
                    .push((ev.track as usize - 1, SimTime::from_micros(ev.t_us)));
            }
            _ => {}
        }
    }

    fn counter(&mut self, name: &'static str, track: u32, t_us: u64, value: f64) {
        let t = SimTime::from_micros(t_us);
        match name {
            counter::RUNNING => self.sinks.running_series.push(t, value),
            counter::WAITING => self.sinks.waiting_series.push(t, value),
            counter::CACHE_USED => {
                if let Some(series) = &mut self.sinks.cache_series {
                    if track > 0 {
                        if let Some(s) = series.get_mut(track as usize - 1) {
                            s.push(t, value);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{worker_track, Attr};

    fn task_span(w: usize, start: u64, end: u64, tag: u64) -> Span {
        Span {
            name: format!("t{start}"),
            category: category::TASK,
            start_us: start,
            end_us: end,
            track: worker_track(w),
            attrs: vec![Attr::u64("tag", tag)],
        }
    }

    #[test]
    fn task_spans_feed_gantt_and_histogram() {
        let mut r = FigureRecorder::new(true, None, None, true);
        r.span(task_span(0, 0, 2_000_000, 1));
        r.span(task_span(1, 500, 1_000_500, 0));
        let s = r.into_sinks();
        let g = s.gantt.unwrap();
        assert_eq!(g.intervals().len(), 2);
        assert_eq!(g.intervals()[0].entity, 0);
        assert_eq!(g.intervals()[0].tag, 1);
        assert_eq!(g.intervals()[0].end, SimTime::from_secs(2));
        assert_eq!(s.task_time_hist.unwrap().total(), 2);
    }

    #[test]
    fn counters_feed_the_step_series() {
        let mut r = FigureRecorder::new(false, None, Some(2), false);
        r.counter(counter::RUNNING, 0, 0, 1.0);
        r.counter(counter::RUNNING, 0, 10, 2.0);
        r.counter(counter::WAITING, 0, 5, 4.0);
        r.counter(counter::CACHE_USED, worker_track(1), 7, 512.0);
        let s = r.into_sinks();
        assert_eq!(s.running_series.len(), 2);
        assert_eq!(s.running_series.max_value(), 2.0);
        assert_eq!(s.waiting_series.last().unwrap().1, 4.0);
        let cache = s.cache_series.unwrap();
        assert!(cache[0].is_empty());
        assert_eq!(cache[1].last().unwrap().1, 512.0);
    }

    #[test]
    fn transfer_instants_fill_the_matrix() {
        let mut r = FigureRecorder::new(false, Some(4), None, false);
        r.instant(InstantEvent {
            name: "xfer".into(),
            category: category::TRANSFER,
            t_us: 9,
            track: 0,
            attrs: vec![
                Attr::u64("src", 0),
                Attr::u64("dst", 2),
                Attr::u64("bytes", 4096),
            ],
        });
        let m = r.into_sinks().transfers.unwrap();
        assert_eq!(m.get(0, 2), 4096);
        assert_eq!(m.total(), 4096);
    }

    #[test]
    fn cache_overflow_instants_become_failures() {
        let mut r = FigureRecorder::new(false, None, None, false);
        r.instant(InstantEvent {
            name: CACHE_OVERFLOW.into(),
            category: category::WORKER,
            t_us: 1_000_000,
            track: worker_track(3),
            attrs: vec![],
        });
        let s = r.into_sinks();
        assert_eq!(s.cache_failures, vec![(3, SimTime::from_secs(1))]);
    }

    #[test]
    fn disabled_sinks_ignore_events() {
        let mut r = FigureRecorder::new(false, None, None, false);
        r.span(task_span(0, 0, 10, 0));
        r.instant(InstantEvent {
            name: "xfer".into(),
            category: category::TRANSFER,
            t_us: 0,
            track: 0,
            attrs: vec![
                Attr::u64("src", 0),
                Attr::u64("dst", 1),
                Attr::u64("bytes", 1),
            ],
        });
        let s = r.into_sinks();
        assert!(s.gantt.is_none() && s.transfers.is_none() && s.task_time_hist.is_none());
        assert!(s.running_series.is_empty());
    }
}
