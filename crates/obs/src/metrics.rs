//! A metrics registry: counters, gauges, and log-binned histograms, with
//! deterministic text export (and parsing, for round-trip verification).
//!
//! Keys live in a `BTreeMap`, so export order is sorted and two runs with
//! the same seed produce byte-identical files.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use vine_simcore::trace::LogHistogram;

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonically-increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A log₂-binned histogram of positive values.
    Histogram(LogHistogram),
}

/// A named collection of metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    items: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c = c.saturating_add(n),
            other => *other = Metric::Counter(n),
        }
    }

    /// Set gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.items.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Record `v` into histogram `name`, creating it with `min`/`bins`
    /// if absent.
    pub fn histogram_record(&mut self, name: &str, min: f64, bins: usize, v: f64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(LogHistogram::new(min, bins)))
        {
            Metric::Histogram(h) => h.record(v),
            other => {
                let mut h = LogHistogram::new(min, bins);
                h.record(v);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Look up a metric.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.items.get(name)
    }

    /// The value of counter `name`, or `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.items.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The value of gauge `name`, or `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.items.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate metrics in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render as the deterministic text format:
    ///
    /// ```text
    /// # vine-obs metrics v1
    /// counter tasks.executed 25
    /// gauge makespan_s 123.5
    /// hist task_time_s min=0.0625 counts=0,1,2
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# vine-obs metrics v1\n");
        for (name, m) in &self.items {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "counter {name} {c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "gauge {name} {g}");
                }
                Metric::Histogram(h) => {
                    let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "hist {name} min={} counts={}",
                        h.bin_lo(0),
                        counts.join(",")
                    );
                }
            }
        }
        out
    }

    /// Parse the text format back. Strict: unknown lines are errors.
    pub fn parse_text(text: &str) -> Result<Self, String> {
        let mut reg = MetricsRegistry::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or_default();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: missing metric name", i + 1))?;
            match kind {
                "counter" => {
                    let v: u64 = parts
                        .next()
                        .ok_or_else(|| format!("line {}: missing value", i + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", i + 1))?;
                    reg.items.insert(name.to_string(), Metric::Counter(v));
                }
                "gauge" => {
                    let v: f64 = parts
                        .next()
                        .ok_or_else(|| format!("line {}: missing value", i + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", i + 1))?;
                    reg.items.insert(name.to_string(), Metric::Gauge(v));
                }
                "hist" => {
                    let mut min = None;
                    let mut counts: Option<Vec<u64>> = None;
                    for p in parts {
                        if let Some(v) = p.strip_prefix("min=") {
                            min = Some(
                                v.parse::<f64>()
                                    .map_err(|e| format!("line {}: bad min: {e}", i + 1))?,
                            );
                        } else if let Some(v) = p.strip_prefix("counts=") {
                            counts = Some(
                                v.split(',')
                                    .map(|c| c.parse::<u64>())
                                    .collect::<Result<_, _>>()
                                    .map_err(|e| format!("line {}: bad counts: {e}", i + 1))?,
                            );
                        } else {
                            return Err(format!("line {}: unknown hist field {p}", i + 1));
                        }
                    }
                    let min = min.ok_or_else(|| format!("line {}: hist missing min", i + 1))?;
                    let counts =
                        counts.ok_or_else(|| format!("line {}: hist missing counts", i + 1))?;
                    let mut h = LogHistogram::new(min, counts.len().max(1));
                    // Reconstruct by filling each bin's lower edge.
                    for (b, &c) in counts.iter().enumerate() {
                        for _ in 0..c {
                            h.record(h.bin_lo(b));
                        }
                    }
                    reg.items.insert(name.to_string(), Metric::Histogram(h));
                }
                other => return Err(format!("line {}: unknown metric kind {other}", i + 1)),
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tasks", 3);
        r.counter_add("tasks", 2);
        r.gauge_set("makespan_s", 1.5);
        r.gauge_set("makespan_s", 2.5);
        assert_eq!(r.counter("tasks"), Some(5));
        assert_eq!(r.gauge("makespan_s"), Some(2.5));
        assert_eq!(r.counter("makespan_s"), None);
    }

    #[test]
    fn text_export_is_sorted_and_round_trips() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("z.last", 9.25);
        r.counter_add("a.first", 7);
        r.histogram_record("m.hist", 0.5, 4, 0.6);
        r.histogram_record("m.hist", 0.5, 4, 3.0);
        let text = r.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# vine-obs metrics v1");
        assert_eq!(lines[1], "counter a.first 7");
        assert!(lines[2].starts_with("hist m.hist min=0.5 counts="));
        assert_eq!(lines[3], "gauge z.last 9.25");

        let back = MetricsRegistry::parse_text(&text).unwrap();
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsRegistry::parse_text("bogus line here").is_err());
        assert!(MetricsRegistry::parse_text("counter only_name").is_err());
        assert!(MetricsRegistry::parse_text("hist h min=1.0").is_err());
    }

    #[test]
    fn export_is_deterministic_across_insertion_orders() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.gauge_set("y", 2.0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("y", 2.0);
        b.counter_add("x", 1);
        assert_eq!(a.to_text(), b.to_text());
    }
}
