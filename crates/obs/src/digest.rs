//! Run digests and cross-run diffing.
//!
//! A [`RunDigest`] is a compact, deterministic summary of one run:
//! makespan, execution count, aggregate phase totals, critical path, and
//! named counters. [`RunDigest::diff`] compares two digests phase by
//! phase — the tool behind the paper's Table I narrative ("Stack 4 beat
//! Stack 3 because interpreter startup and import time collapsed").
//! Two same-seed simulated runs diff to zero (checked in tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::attrib::{phase_totals, Phase, PhaseBreakdown, TaskAttribution, NPHASES, PHASES};
use crate::critical::CriticalPath;

/// Compact summary of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunDigest {
    /// Caller-supplied label (e.g. "stack3-dv3-small-seed7").
    pub label: String,
    /// Run wall time, microseconds.
    pub makespan_us: u64,
    /// Number of task executions attributed (includes retried attempts).
    pub task_executions: u64,
    /// Aggregate time per phase over all executions.
    pub phase_totals_us: PhaseBreakdown,
    /// Weighted critical path of the completed DAG, microseconds.
    pub critical_path_us: u64,
    /// Named counters (sorted), e.g. evictions, preemptions, cache hits.
    pub counters: BTreeMap<String, u64>,
}

impl RunDigest {
    /// Build a digest from attributions plus run-level facts.
    pub fn from_attributions(
        label: impl Into<String>,
        makespan_us: u64,
        critical_path: Option<&CriticalPath>,
        attrs: &[TaskAttribution],
    ) -> RunDigest {
        RunDigest {
            label: label.into(),
            makespan_us,
            task_executions: attrs.len() as u64,
            phase_totals_us: phase_totals(attrs),
            critical_path_us: critical_path.map_or(0, |c| c.total_us),
            counters: BTreeMap::new(),
        }
    }

    /// Set a named counter.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Compare `self` (baseline) against `other` (candidate).
    pub fn diff(&self, other: &RunDigest) -> DigestDiff {
        let mut phase_delta_us = [0i64; NPHASES];
        for p in PHASES {
            phase_delta_us[p.index()] =
                other.phase_totals_us.get(p) as i64 - self.phase_totals_us.get(p) as i64;
        }
        let mut counter_deltas = BTreeMap::new();
        let keys = self.counters.keys().chain(other.counters.keys());
        for k in keys {
            let a = self.counters.get(k).copied().unwrap_or(0);
            let b = other.counters.get(k).copied().unwrap_or(0);
            if !counter_deltas.contains_key(k) {
                counter_deltas.insert(k.clone(), b as i64 - a as i64);
            }
        }
        DigestDiff {
            base_label: self.label.clone(),
            other_label: other.label.clone(),
            makespan_delta_us: other.makespan_us as i64 - self.makespan_us as i64,
            critical_path_delta_us: other.critical_path_us as i64 - self.critical_path_us as i64,
            task_executions_delta: other.task_executions as i64 - self.task_executions as i64,
            phase_delta_us,
            counter_deltas,
        }
    }

    /// Deterministic text rendering (sorted counters, fixed phase order).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run {}", self.label);
        let _ = writeln!(out, "makespan_us {}", self.makespan_us);
        let _ = writeln!(out, "task_executions {}", self.task_executions);
        let _ = writeln!(out, "critical_path_us {}", self.critical_path_us);
        for p in PHASES {
            let _ = writeln!(out, "phase {} {}", p.name(), self.phase_totals_us.get(p));
        }
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        out
    }
}

/// The phase-by-phase difference between two runs. Deltas are
/// `other - base`: negative means the candidate spent less.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestDiff {
    /// Baseline run label.
    pub base_label: String,
    /// Candidate run label.
    pub other_label: String,
    /// Makespan delta, µs (negative = candidate faster).
    pub makespan_delta_us: i64,
    /// Critical-path delta, µs.
    pub critical_path_delta_us: i64,
    /// Execution-count delta.
    pub task_executions_delta: i64,
    /// Per-phase aggregate delta, µs, indexed by [`Phase::index`].
    pub phase_delta_us: [i64; NPHASES],
    /// Per-counter delta (union of both runs' counters).
    pub counter_deltas: BTreeMap<String, i64>,
}

impl DigestDiff {
    /// True when nothing differs — the expected result of diffing two
    /// same-seed runs.
    pub fn is_zero(&self) -> bool {
        self.makespan_delta_us == 0
            && self.critical_path_delta_us == 0
            && self.task_executions_delta == 0
            && self.phase_delta_us.iter().all(|&d| d == 0)
            && self.counter_deltas.values().all(|&d| d == 0)
    }

    /// Delta for one phase.
    pub fn phase_delta(&self, p: Phase) -> i64 {
        self.phase_delta_us[p.index()]
    }

    /// The phase with the largest absolute delta (ties break to display
    /// order) — "where did the speedup come from?".
    pub fn dominant_phase(&self) -> Phase {
        let mut best = Phase::Dispatch;
        let mut best_abs = self.phase_delta_us[0].unsigned_abs();
        for p in PHASES {
            let a = self.phase_delta_us[p.index()].unsigned_abs();
            if a > best_abs {
                best = p;
                best_abs = a;
            }
        }
        best
    }

    /// Sum of phase deltas (equals total attributed-time change).
    pub fn total_phase_delta_us(&self) -> i64 {
        self.phase_delta_us.iter().sum()
    }

    /// Deterministic text rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "diff {} -> {}", self.base_label, self.other_label);
        let _ = writeln!(out, "makespan_delta_us {:+}", self.makespan_delta_us);
        let _ = writeln!(
            out,
            "critical_path_delta_us {:+}",
            self.critical_path_delta_us
        );
        let _ = writeln!(
            out,
            "task_executions_delta {:+}",
            self.task_executions_delta
        );
        for p in PHASES {
            let _ = writeln!(out, "phase {} {:+}", p.name(), self.phase_delta(p));
        }
        for (k, v) in &self.counter_deltas {
            let _ = writeln!(out, "counter {k} {v:+}");
        }
        out
    }
}

/// Everything a recorded run hands back to callers: the raw per-task
/// attributions plus the digest built from them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunObs {
    /// One entry per attributed task execution.
    pub attributions: Vec<TaskAttribution>,
    /// The run's digest.
    pub digest: RunDigest,
}

impl RunObs {
    /// True if every attribution satisfies the exactness invariant.
    pub fn all_exact(&self) -> bool {
        self.attributions.iter().all(TaskAttribution::is_exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(task: u32, phases: [u64; NPHASES]) -> TaskAttribution {
        let phases = PhaseBreakdown { us: phases };
        TaskAttribution {
            task,
            worker: 0,
            start_us: 0,
            end_us: phases.total_us(),
            phases,
        }
    }

    fn digest(label: &str, compute: u64, imports: u64) -> RunDigest {
        let attrs = vec![attr(0, [10, 5, 100, imports, compute, 3])];
        let mut d = RunDigest::from_attributions(label, 10_000, None, &attrs);
        d.set_counter("evictions", 2);
        d
    }

    #[test]
    fn same_digest_diffs_to_zero() {
        let a = digest("a", 500, 80);
        let b = digest("b", 500, 80);
        let d = a.diff(&b);
        assert!(d.is_zero(), "non-zero diff: {}", d.to_text());
    }

    #[test]
    fn diff_localizes_the_changed_phase() {
        let base = digest("stack3", 500, 8_000);
        let cand = digest("stack4", 500, 0);
        let d = base.diff(&cand);
        assert!(!d.is_zero());
        assert_eq!(d.phase_delta(Phase::Imports), -8_000);
        assert_eq!(d.phase_delta(Phase::Compute), 0);
        assert_eq!(d.dominant_phase(), Phase::Imports);
        assert_eq!(d.total_phase_delta_us(), -8_000);
    }

    #[test]
    fn counter_deltas_cover_the_union() {
        let mut a = digest("a", 1, 1);
        a.set_counter("only_a", 5);
        let mut b = digest("b", 1, 1);
        b.set_counter("only_b", 7);
        let d = a.diff(&b);
        assert_eq!(d.counter_deltas["only_a"], -5);
        assert_eq!(d.counter_deltas["only_b"], 7);
        assert_eq!(d.counter_deltas["evictions"], 0);
    }

    #[test]
    fn text_renderings_are_deterministic() {
        let a = digest("a", 500, 80);
        assert_eq!(a.to_text(), digest("a", 500, 80).to_text());
        assert!(a.to_text().starts_with("run a\nmakespan_us 10000\n"));
        let d = a.diff(&digest("b", 400, 80));
        assert!(d.to_text().contains("phase compute -100"));
    }

    #[test]
    fn run_obs_exactness_check() {
        let good = RunObs {
            attributions: vec![attr(0, [1, 2, 3, 4, 5, 6])],
            digest: digest("g", 1, 1),
        };
        assert!(good.all_exact());
        let mut bad = good.clone();
        bad.attributions[0].end_us += 1;
        assert!(!bad.all_exact());
    }
}
