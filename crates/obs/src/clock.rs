//! The clock abstraction unifying simulated and wall-clock time.
//!
//! Both execution paths stamp events in `u64` microseconds since the run
//! origin. The simulated engine drives a [`ManualClock`] from its event
//! loop; the real runtime reads a [`WallClock`] anchored at run start.

use std::cell::Cell;
use std::time::Instant;

/// A source of microseconds-since-run-origin timestamps.
pub trait Clock {
    /// Current time in microseconds since the run origin.
    fn now_us(&self) -> u64;
}

/// Real time: microseconds elapsed since construction, from a monotonic
/// [`Instant`]. Cheap to share by reference across worker threads.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn start() -> Self {
        WallClock {
            // vine-audit: allow(A103) -- WallClock IS the wall-clock boundary: it measures real elapsed runtime for reporting and never feeds simulated time or digests
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        // u64 micros covers ~585 000 years of run time.
        self.origin.elapsed().as_micros() as u64
    }
}

/// Simulated time: holds whatever the event loop last set. Single-threaded
/// by construction (the discrete-event engine is serial).
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    now_us: Cell<u64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance (or rewind — the sim is trusted) to `t_us`.
    pub fn set_us(&self, t_us: u64) {
        self.now_us.set(t_us);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_reads_back_what_was_set() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.set_us(1234);
        assert_eq!(c.now_us(), 1234);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::start();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
