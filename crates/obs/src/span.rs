//! The structured event model: spans, instant events, and attributes.
//!
//! Times are plain `u64` microseconds since the run origin, so the same
//! types describe simulated time (`vine-core`, where the origin is t=0 of
//! the event loop) and wall-clock time (`vine-exec`, where the origin is
//! the start of the run as measured by a [`crate::WallClock`]).

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// A string value (escaped on JSON export).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
}

/// One key/value attribute. Keys are `&'static str` so attaching
/// attributes never allocates for the key.
#[derive(Clone, Debug, PartialEq)]
pub struct Attr {
    /// Attribute name.
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

impl Attr {
    /// A string attribute.
    pub fn str(key: &'static str, v: impl Into<String>) -> Self {
        Attr {
            key,
            value: AttrValue::Str(v.into()),
        }
    }

    /// An unsigned-integer attribute.
    pub fn u64(key: &'static str, v: u64) -> Self {
        Attr {
            key,
            value: AttrValue::U64(v),
        }
    }

    /// A signed-integer attribute.
    pub fn i64(key: &'static str, v: i64) -> Self {
        Attr {
            key,
            value: AttrValue::I64(v),
        }
    }

    /// A float attribute.
    pub fn f64(key: &'static str, v: f64) -> Self {
        Attr {
            key,
            value: AttrValue::F64(v),
        }
    }
}

/// Well-known span/event categories shared by both execution paths.
/// Exporters pass categories through; the [`crate::FigureRecorder`]
/// interprets them to feed the figure sinks.
pub mod category {
    /// A task execution on a worker (one span per execution attempt that
    /// ran to completion).
    pub const TASK: &str = "task";
    /// Manager serial-loop work: dispatch and collect operations.
    pub const MANAGER: &str = "manager";
    /// LibraryTask instantiation (serverless mode).
    pub const LIBRARY: &str = "library";
    /// A completed data transfer (instant event carrying `src`, `dst`,
    /// `bytes`).
    pub const TRANSFER: &str = "transfer";
    /// Worker lifecycle instants: preemption, cache overflow, start.
    pub const WORKER: &str = "worker";
}

/// Well-known counter names.
pub mod counter {
    /// Tasks currently executing.
    pub const RUNNING: &str = "tasks.running";
    /// Tasks ready but not yet dispatched.
    pub const WAITING: &str = "tasks.waiting";
    /// Bytes resident in a worker's cache (track = worker lane).
    pub const CACHE_USED: &str = "cache.used";
}

/// The manager's lane in the track/`tid` numbering. Workers occupy lanes
/// `1..=W` (worker `w` is lane `w + 1`), matching the transfer-matrix
/// node convention.
pub const MANAGER_TRACK: u32 = 0;

/// The lane of worker `w`.
pub fn worker_track(w: usize) -> u32 {
    w as u32 + 1
}

/// A named interval with a category, a lane, and attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Display name (e.g. the task name).
    pub name: String,
    /// Category (see [`category`]).
    pub category: &'static str,
    /// Start, microseconds since run origin.
    pub start_us: u64,
    /// End, microseconds since run origin (`>= start_us`).
    pub end_us: u64,
    /// Lane (Chrome `tid`): [`MANAGER_TRACK`] or [`worker_track`].
    pub track: u32,
    /// Typed attributes.
    pub attrs: Vec<Attr>,
}

impl Span {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|a| a.key == key).map(|a| &a.value)
    }

    /// Look up a `u64` attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// A point-in-time event.
#[derive(Clone, Debug, PartialEq)]
pub struct InstantEvent {
    /// Display name.
    pub name: String,
    /// Category (see [`category`]).
    pub category: &'static str,
    /// When, microseconds since run origin.
    pub t_us: u64,
    /// Lane.
    pub track: u32,
    /// Typed attributes.
    pub attrs: Vec<Attr>,
}

impl InstantEvent {
    /// Look up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|a| a.key == key).map(|a| &a.value)
    }

    /// Look up a `u64` attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_duration_and_attr_lookup() {
        let s = Span {
            name: "p0".into(),
            category: category::TASK,
            start_us: 10,
            end_us: 35,
            track: worker_track(2),
            attrs: vec![Attr::u64("task", 7), Attr::str("kind", "process")],
        };
        assert_eq!(s.dur_us(), 25);
        assert_eq!(s.track, 3);
        assert_eq!(s.attr_u64("task"), Some(7));
        assert_eq!(s.attr("kind"), Some(&AttrValue::Str("process".into())));
        assert_eq!(s.attr("absent"), None);
        assert_eq!(s.attr_u64("kind"), None);
    }

    #[test]
    fn track_numbering_reserves_manager_lane() {
        assert_eq!(MANAGER_TRACK, 0);
        assert_eq!(worker_track(0), 1);
        assert_eq!(worker_track(9), 10);
    }
}
