//! Per-task overhead attribution into the paper's cost phases.
//!
//! Table I's speedups come from shrinking specific per-task overheads:
//! dispatch latency, input staging, Python interpreter startup, software
//! import time. This module decomposes every task execution into those
//! phases with the invariant that **the phases sum to the task's wall
//! time exactly** (integer microseconds, no rounding residue) — enforced
//! by [`TaskAttribution::is_exact`] and checked by property tests.

use std::fmt::Write as _;

/// The cost phases of one task execution, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Manager serial-loop time to create and send the assignment.
    Dispatch,
    /// Waiting for inputs: network transfer, shared-FS reads, local disk
    /// reads, and (serverless) waiting for a library slot.
    InputTransfer,
    /// Python interpreter startup (standard tasks) or function-call
    /// invocation overhead (serverless).
    InterpreterStartup,
    /// Software-environment import time paid by this task.
    Imports,
    /// The task's own useful work.
    Compute,
    /// Writing/staging outputs: local disk writes plus (WQ) the output
    /// flow back to the manager.
    OutputTransfer,
}

/// Number of phases.
pub const NPHASES: usize = 6;

/// All phases, in display order.
pub const PHASES: [Phase; NPHASES] = [
    Phase::Dispatch,
    Phase::InputTransfer,
    Phase::InterpreterStartup,
    Phase::Imports,
    Phase::Compute,
    Phase::OutputTransfer,
];

impl Phase {
    /// Stable machine-readable name (used in CSV headers and digests).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::InputTransfer => "input_transfer",
            Phase::InterpreterStartup => "interpreter_startup",
            Phase::Imports => "imports",
            Phase::Compute => "compute",
            Phase::OutputTransfer => "output_transfer",
        }
    }

    /// Index into a [`PhaseBreakdown`]'s array.
    pub fn index(self) -> usize {
        match self {
            Phase::Dispatch => 0,
            Phase::InputTransfer => 1,
            Phase::InterpreterStartup => 2,
            Phase::Imports => 3,
            Phase::Compute => 4,
            Phase::OutputTransfer => 5,
        }
    }
}

/// Microseconds per phase for one task (or summed over many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Time per phase, indexed by [`Phase::index`].
    pub us: [u64; NPHASES],
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time in one phase.
    pub fn get(&self, p: Phase) -> u64 {
        self.us[p.index()]
    }

    /// Add time to one phase.
    pub fn add(&mut self, p: Phase, us: u64) {
        self.us[p.index()] += us;
    }

    /// Set one phase.
    pub fn set(&mut self, p: Phase, us: u64) {
        self.us[p.index()] = us;
    }

    /// Sum across all phases.
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }

    /// Element-wise accumulate.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        for i in 0..NPHASES {
            self.us[i] += other.us[i];
        }
    }

    /// The phase holding the most time (ties break to display order).
    pub fn dominant(&self) -> Phase {
        let mut best = Phase::Dispatch;
        let mut best_us = self.us[0];
        for p in PHASES {
            if self.us[p.index()] > best_us {
                best = p;
                best_us = self.us[p.index()];
            }
        }
        best
    }
}

/// The full decomposition of one task execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskAttribution {
    /// Task id in the run's graph.
    pub task: u32,
    /// Worker that executed it.
    pub worker: u32,
    /// When the manager committed the assignment (µs since run origin).
    pub start_us: u64,
    /// When the task's outputs were fully delivered (µs since run origin).
    pub end_us: u64,
    /// Per-phase decomposition of `[start_us, end_us)`.
    pub phases: PhaseBreakdown,
}

impl TaskAttribution {
    /// Wall time of the execution.
    pub fn wall_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// True if the phases sum to the wall time exactly — the core
    /// attribution invariant.
    pub fn is_exact(&self) -> bool {
        self.phases.total_us() == self.wall_us()
    }
}

/// Sum many attributions into aggregate phase totals.
pub fn phase_totals(attrs: &[TaskAttribution]) -> PhaseBreakdown {
    let mut total = PhaseBreakdown::new();
    for a in attrs {
        total.accumulate(&a.phases);
    }
    total
}

/// Render attributions as CSV, one row per task, sorted by task id
/// (then start time) so the output is deterministic.
pub fn attributions_to_csv(attrs: &[TaskAttribution]) -> String {
    let mut rows: Vec<&TaskAttribution> = attrs.iter().collect();
    rows.sort_by_key(|a| (a.task, a.start_us, a.worker));
    let mut out = String::from("task,worker,start_us,end_us,wall_us");
    for p in PHASES {
        let _ = write!(out, ",{}_us", p.name());
    }
    out.push('\n');
    for a in rows {
        let _ = write!(
            out,
            "{},{},{},{},{}",
            a.task,
            a.worker,
            a.start_us,
            a.end_us,
            a.wall_us()
        );
        for p in PHASES {
            let _ = write!(out, ",{}", a.phases.get(p));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(task: u32, phases: [u64; NPHASES]) -> TaskAttribution {
        let breakdown = PhaseBreakdown { us: phases };
        TaskAttribution {
            task,
            worker: 0,
            start_us: 100,
            end_us: 100 + breakdown.total_us(),
            phases: breakdown,
        }
    }

    #[test]
    fn exactness_holds_when_phases_span_the_wall() {
        let a = attr(1, [25_000, 10, 1_500_000, 8_000_000, 60_000_000, 500]);
        assert!(a.is_exact());
        assert_eq!(a.wall_us(), a.phases.total_us());
    }

    #[test]
    fn exactness_fails_on_residue() {
        let mut a = attr(1, [1, 2, 3, 4, 5, 6]);
        a.end_us += 1;
        assert!(!a.is_exact());
    }

    #[test]
    fn dominant_phase_and_totals() {
        let attrs = vec![
            attr(0, [10, 0, 100, 50, 200, 5]),
            attr(1, [10, 0, 100, 50, 900, 5]),
        ];
        let totals = phase_totals(&attrs);
        assert_eq!(totals.get(Phase::Compute), 1100);
        assert_eq!(totals.get(Phase::Dispatch), 20);
        assert_eq!(totals.dominant(), Phase::Compute);
        assert_eq!(totals.total_us(), attrs.iter().map(|a| a.wall_us()).sum());
    }

    #[test]
    fn dominant_breaks_ties_to_display_order() {
        let b = PhaseBreakdown::new();
        assert_eq!(b.dominant(), Phase::Dispatch);
    }

    #[test]
    fn csv_is_sorted_and_complete() {
        let attrs = vec![attr(5, [1, 2, 3, 4, 5, 6]), attr(2, [6, 5, 4, 3, 2, 1])];
        let csv = attributions_to_csv(&attrs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "task,worker,start_us,end_us,wall_us,dispatch_us,input_transfer_us,\
             interpreter_startup_us,imports_us,compute_us,output_transfer_us"
                .split_whitespace()
                .collect::<String>()
        );
        assert!(lines[1].starts_with("2,"));
        assert!(lines[2].starts_with("5,"));
        assert!(lines[1].ends_with(",6,5,4,3,2,1"));
    }
}
