//! The pluggable recording backend.
//!
//! Instrumented code holds a `&mut dyn Recorder` and checks
//! [`Recorder::is_enabled`] before constructing spans, so the default
//! [`NullRecorder`] path does no allocation and no work beyond one
//! virtual call per would-be event.

use crate::span::{InstantEvent, Span};

/// A sink for observability events.
pub trait Recorder {
    /// False for recorders that drop everything; instrumentation uses
    /// this to skip building events entirely.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Record a completed span.
    fn span(&mut self, span: Span);

    /// Record an instant event.
    fn instant(&mut self, ev: InstantEvent);

    /// Record a counter sample: `name` at time `t_us` on lane `track`
    /// has absolute value `value`.
    fn counter(&mut self, name: &'static str, track: u32, t_us: u64, value: f64);
}

/// The zero-cost default: drops everything, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn span(&mut self, _span: Span) {}

    fn instant(&mut self, _ev: InstantEvent) {}

    fn counter(&mut self, _name: &'static str, _track: u32, _t_us: u64, _value: f64) {}
}

/// One recorded counter sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CounterSample {
    /// Counter name.
    pub name: &'static str,
    /// Lane.
    pub track: u32,
    /// When, microseconds since run origin.
    pub t_us: u64,
    /// Absolute value at `t_us`.
    pub value: f64,
}

/// Collects everything in memory, in arrival order, for export.
#[derive(Clone, Debug, Default)]
pub struct MemoryRecorder {
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    counters: Vec<CounterSample>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded spans, in arrival order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Recorded instant events, in arrival order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// Recorded counter samples, in arrival order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// Spans of one category.
    pub fn spans_in<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.category == category)
    }
}

impl Recorder for MemoryRecorder {
    fn span(&mut self, span: Span) {
        self.spans.push(span);
    }

    fn instant(&mut self, ev: InstantEvent) {
        self.instants.push(ev);
    }

    fn counter(&mut self, name: &'static str, track: u32, t_us: u64, value: f64) {
        self.counters.push(CounterSample {
            name,
            track,
            t_us,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{category, Attr};

    fn span(name: &str, cat: &'static str) -> Span {
        Span {
            name: name.into(),
            category: cat,
            start_us: 0,
            end_us: 1,
            track: 0,
            attrs: vec![Attr::u64("x", 1)],
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.is_enabled());
        r.span(span("a", category::TASK));
        r.counter("c", 0, 0, 1.0);
    }

    #[test]
    fn memory_recorder_collects_in_order() {
        let mut r = MemoryRecorder::new();
        assert!(r.is_enabled());
        r.span(span("a", category::TASK));
        r.span(span("b", category::MANAGER));
        r.instant(InstantEvent {
            name: "preempt".into(),
            category: category::WORKER,
            t_us: 5,
            track: 1,
            attrs: vec![],
        });
        r.counter("tasks.running", 0, 7, 2.0);
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans_in(category::TASK).count(), 1);
        assert_eq!(r.instants().len(), 1);
        assert_eq!(r.counters()[0].value, 2.0);
    }
}
