//! Deterministic CSV export of recorded spans and counter samples.
//!
//! Rows are sorted (spans by `(start, track, name)`, counters by
//! `(name, track, time)`) so two identical runs produce byte-identical
//! files regardless of internal iteration order.

use std::fmt::Write as _;

use crate::recorder::MemoryRecorder;
use crate::span::AttrValue;

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn attr_text(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => s.clone(),
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::F64(f) => f.to_string(),
    }
}

/// Render spans as CSV with columns
/// `category,name,track,start_us,end_us,dur_us,attrs` where `attrs` is a
/// `key=value` list joined by `;` in attribute order.
pub fn spans_to_csv(rec: &MemoryRecorder) -> String {
    let mut rows: Vec<&crate::span::Span> = rec.spans().iter().collect();
    rows.sort_by(|a, b| {
        (a.start_us, a.track, &a.name, a.end_us).cmp(&(b.start_us, b.track, &b.name, b.end_us))
    });
    let mut out = String::from("category,name,track,start_us,end_us,dur_us,attrs\n");
    for s in rows {
        let attrs = s
            .attrs
            .iter()
            .map(|a| format!("{}={}", a.key, attr_text(&a.value)))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            s.category,
            csv_field(&s.name),
            s.track,
            s.start_us,
            s.end_us,
            s.dur_us(),
            csv_field(&attrs)
        );
    }
    out
}

/// Render counter samples as CSV with columns `counter,track,t_us,value`.
pub fn counters_to_csv(rec: &MemoryRecorder) -> String {
    let mut rows: Vec<_> = rec.counters().to_vec();
    rows.sort_by(|a, b| {
        (a.name, a.track, a.t_us)
            .cmp(&(b.name, b.track, b.t_us))
            .then(a.value.total_cmp(&b.value))
    });
    let mut out = String::from("counter,track,t_us,value\n");
    for c in rows {
        let _ = writeln!(out, "{},{},{},{}", c.name, c.track, c.t_us, c.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span::{category, Attr, Span};

    fn span(name: &str, start: u64, track: u32) -> Span {
        Span {
            name: name.into(),
            category: category::TASK,
            start_us: start,
            end_us: start + 10,
            track,
            attrs: vec![Attr::u64("task", 1)],
        }
    }

    #[test]
    fn span_csv_is_sorted_by_time_then_track() {
        let mut r = MemoryRecorder::new();
        r.span(span("late", 50, 0));
        r.span(span("early", 10, 2));
        r.span(span("early2", 10, 1));
        let csv = spans_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "category,name,track,start_us,end_us,dur_us,attrs");
        assert!(lines[1].contains("early2"));
        assert!(lines[2].contains("early,"));
        assert!(lines[3].contains("late"));
    }

    #[test]
    fn fields_with_commas_and_quotes_are_quoted() {
        let mut r = MemoryRecorder::new();
        r.span(Span {
            name: "a,b \"c\"".into(),
            category: category::MANAGER,
            start_us: 0,
            end_us: 1,
            track: 0,
            attrs: vec![],
        });
        let csv = spans_to_csv(&r);
        assert!(csv.contains("\"a,b \"\"c\"\"\""));
    }

    #[test]
    fn counter_csv_sorted_and_deterministic() {
        let mut a = MemoryRecorder::new();
        a.counter("z", 0, 5, 1.0);
        a.counter("a", 0, 9, 2.0);
        let mut b = MemoryRecorder::new();
        b.counter("a", 0, 9, 2.0);
        b.counter("z", 0, 5, 1.0);
        assert_eq!(counters_to_csv(&a), counters_to_csv(&b));
        assert!(counters_to_csv(&a).starts_with("counter,track,t_us,value\na,0,9,2\n"));
    }
}
