//! Critical-path extraction over a completed DAG.
//!
//! Given per-task wall times (from attribution), the weighted critical
//! path is the longest dependency chain by total time — the floor on
//! makespan no amount of added parallelism can beat (§V: DV3's
//! near-interactive target is bounded by the accumulation spine). The
//! invariant `critical_path ≤ makespan ≤ Σ task walls` is checked by
//! property tests.

use vine_dag::{TaskGraph, TaskId};

/// The weighted critical path of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Tasks on the path, in dependency order (producer first).
    pub tasks: Vec<TaskId>,
    /// Total wall time along the path, microseconds.
    pub total_us: u64,
}

impl CriticalPath {
    /// Compute the critical path of `graph`, weighting task `t` by
    /// `wall_us[t.0]`. Tasks missing from `wall_us` (e.g. never executed)
    /// weigh zero.
    ///
    /// # Panics
    /// If the graph contains a cycle (graphs are validated at build time).
    pub fn compute(graph: &TaskGraph, wall_us: &[u64]) -> CriticalPath {
        let order = graph.topo_order().expect("graph must be acyclic");
        let n = graph.task_count();
        // finish[t] = longest total time of any chain ending at t.
        let mut finish = vec![0u64; n];
        // pred[t] = previous task on that chain.
        let mut pred: Vec<Option<TaskId>> = vec![None; n];
        for &t in &order {
            let ti = t.0 as usize;
            let w = wall_us.get(ti).copied().unwrap_or(0);
            let mut best = 0u64;
            let mut best_pred = None;
            for &f in &graph.task(t).inputs {
                if let Some(p) = graph.file(f).producer {
                    let pf = finish[p.0 as usize];
                    if pf > best || (pf == best && best_pred.is_none()) {
                        best = pf;
                        best_pred = Some(p);
                    }
                }
            }
            finish[ti] = best + w;
            pred[ti] = best_pred;
        }
        let Some(end) = (0..n).max_by_key(|&i| (finish[i], std::cmp::Reverse(i))) else {
            return CriticalPath {
                tasks: Vec::new(),
                total_us: 0,
            };
        };
        let total_us = finish[end];
        let mut tasks = Vec::new();
        let mut cur = Some(TaskId(end as u32));
        while let Some(t) = cur {
            tasks.push(t);
            cur = pred[t.0 as usize];
        }
        tasks.reverse();
        CriticalPath { tasks, total_us }
    }

    /// Number of tasks on the path.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True for an empty graph's path.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_dag::TaskKind;

    /// ext -> a -> (f1,f2); f1 -> b; f2 -> c; (b,c) -> d
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let ext = g.add_external_file("in", 1);
        let (_, a_out) = g.add_task("a", TaskKind::Process, vec![ext], &[1, 1], 1.0);
        let (_, b_out) = g.add_task("b", TaskKind::Process, vec![a_out[0]], &[1], 1.0);
        let (_, c_out) = g.add_task("c", TaskKind::Process, vec![a_out[1]], &[1], 1.0);
        g.add_task(
            "d",
            TaskKind::Accumulate,
            vec![b_out[0], c_out[0]],
            &[1],
            1.0,
        );
        g
    }

    #[test]
    fn picks_the_heavier_branch() {
        let g = diamond();
        // b takes 10, c takes 90: path must go a -> c -> d.
        let cp = CriticalPath::compute(&g, &[5, 10, 90, 2]);
        assert_eq!(cp.total_us, 5 + 90 + 2);
        assert_eq!(cp.tasks, vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn path_is_bounded_by_sum_of_walls() {
        let g = diamond();
        let walls = [5u64, 10, 90, 2];
        let cp = CriticalPath::compute(&g, &walls);
        assert!(cp.total_us <= walls.iter().sum());
        assert_eq!(cp.len(), 3);
    }

    #[test]
    fn independent_tasks_yield_single_task_path() {
        let mut g = TaskGraph::new();
        let e = g.add_external_file("in", 1);
        g.add_task("x", TaskKind::Process, vec![e], &[1], 1.0);
        g.add_task("y", TaskKind::Process, vec![e], &[1], 1.0);
        let cp = CriticalPath::compute(&g, &[3, 7]);
        assert_eq!(cp.total_us, 7);
        assert_eq!(cp.tasks, vec![TaskId(1)]);
    }

    #[test]
    fn empty_graph_has_empty_path() {
        let g = TaskGraph::new();
        let cp = CriticalPath::compute(&g, &[]);
        assert!(cp.is_empty());
        assert_eq!(cp.total_us, 0);
    }

    #[test]
    fn missing_walls_weigh_zero() {
        let g = diamond();
        let cp = CriticalPath::compute(&g, &[1]); // only task 0 known
        assert_eq!(cp.total_us, 1);
        assert!(cp.tasks.contains(&TaskId(0)));
    }
}
