//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Hand-rolled (no serde). Emits the JSON-object form
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` with:
//!
//! * `"X"` complete events for spans (`ts` + `dur` in microseconds — the
//!   trace_event native unit, which matches our `u64` µs timestamps
//!   exactly);
//! * `"i"` instant events;
//! * `"C"` counter events;
//! * `"M"` metadata events naming each lane (`tid`): `manager` is lane 0,
//!   `worker N` is lane N+1.
//!
//! Everything shares `pid` 0. Events are emitted spans-first in recorded
//! order, then instants, then counters — a deterministic order for a
//! deterministic recorder.

use std::fmt::Write as _;

use crate::recorder::{CounterSample, MemoryRecorder};
use crate::span::{AttrValue, MANAGER_TRACK};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Str(s) => {
            let _ = write!(out, "\"{}\"", json_escape(s));
        }
        AttrValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::F64(f) => {
            // JSON has no NaN/Infinity; fall back to null.
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_args(out: &mut String, attrs: &[crate::span::Attr]) {
    out.push_str("\"args\":{");
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", json_escape(a.key));
        write_attr_value(out, &a.value);
    }
    out.push('}');
}

/// Render a recorder's contents as a Chrome trace JSON document.
pub fn to_chrome_json(rec: &MemoryRecorder) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Lane-name metadata: collect every track that appears.
    let mut tracks: Vec<u32> = rec
        .spans()
        .iter()
        .map(|s| s.track)
        .chain(rec.instants().iter().map(|i| i.track))
        .chain(rec.counters().iter().map(|c| c.track))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if *t == MANAGER_TRACK {
            "manager".to_string()
        } else {
            format!("worker {}", t - 1)
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }

    for s in rec.spans() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},",
            json_escape(&s.name),
            s.category,
            s.start_us,
            s.dur_us(),
            s.track,
        );
        write_args(&mut out, &s.attrs);
        out.push('}');
    }

    for i in rec.instants() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":0,\"tid\":{},",
            json_escape(&i.name),
            i.category,
            i.t_us,
            i.track,
        );
        write_args(&mut out, &i.attrs);
        out.push('}');
    }

    for c in rec.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let v = if c.value.is_finite() { c.value } else { 0.0 };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"value\":{v}}}}}",
            json_escape(c.name),
            c.t_us,
            c.track,
        );
    }

    out.push_str("]}");
    out
}

/// Convenience: the counter samples of one named counter, time-ordered
/// as recorded.
pub fn counter_samples<'a>(
    rec: &'a MemoryRecorder,
    name: &'a str,
) -> impl Iterator<Item = &'a CounterSample> {
    rec.counters().iter().filter(move |c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::recorder::Recorder;
    use crate::span::{category, Attr, InstantEvent, Span};

    fn sample_recorder() -> MemoryRecorder {
        let mut r = MemoryRecorder::new();
        r.span(Span {
            name: "proc \"x\"\n".into(),
            category: category::TASK,
            start_us: 100,
            end_us: 400,
            track: 1,
            attrs: vec![Attr::u64("task", 3), Attr::str("kind", "process")],
        });
        r.instant(InstantEvent {
            name: "preempt".into(),
            category: category::WORKER,
            t_us: 250,
            track: 1,
            attrs: vec![],
        });
        r.counter("tasks.running", 0, 100, 1.0);
        r
    }

    #[test]
    fn exported_trace_is_valid_json_with_expected_events() {
        let text = to_chrome_json(&sample_recorder());
        let v = JsonValue::parse(&text).expect("chrome trace must parse");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 lane-metadata events (tracks 0 and 1) + span + instant + counter.
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("proc \"x\"\n"));
        assert_eq!(span.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(300));
        assert_eq!(span.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(
            span.get("args").unwrap().get("task").unwrap().as_u64(),
            Some(3)
        );
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .unwrap();
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{0001}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
        // Round-trip through the parser.
        let doc = format!("\"{}\"", json_escape("tricky \"\\\n\t\u{0007} value"));
        assert_eq!(
            JsonValue::parse(&doc).unwrap().as_str(),
            Some("tricky \"\\\n\t\u{0007} value")
        );
    }

    #[test]
    fn empty_recorder_exports_empty_event_list() {
        let text = to_chrome_json(&MemoryRecorder::new());
        let v = JsonValue::parse(&text).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn nonfinite_floats_become_null_or_zero() {
        let mut r = MemoryRecorder::new();
        r.span(Span {
            name: "s".into(),
            category: category::TASK,
            start_us: 0,
            end_us: 1,
            track: 0,
            attrs: vec![Attr::f64("bad", f64::NAN)],
        });
        r.counter("c", 0, 0, f64::INFINITY);
        let text = to_chrome_json(&r);
        let v = JsonValue::parse(&text).expect("nonfinite values must not break JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("args").unwrap().get("bad"), Some(&JsonValue::Null));
    }
}
