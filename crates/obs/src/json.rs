//! A minimal validating JSON parser (no serde).
//!
//! Exists so tests — and the `vine-sim --trace-out` acceptance path — can
//! verify that exported Chrome traces are structurally valid JSON and
//! inspect their contents, without adding a dependency.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are sorted (BTreeMap) — key order is
/// not significant in JSON and sorting keeps comparisons deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// This value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// This value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where the error occurred.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or 1-9 followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-4.5e2").unwrap(),
            JsonValue::Number(-450.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\\nthere\"").unwrap(),
            JsonValue::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert!(v.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(JsonValue::parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "\"unterminated",
            "true false",
            "{\"a\":1,}",
            "\"bad \u{0001} ctrl\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("4.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }
}
