#![deny(unsafe_code)]

//! # vine-obs — unified observability for both execution paths
//!
//! The paper's entire argument is a sequence of observability claims:
//! Table I's 13.03× decomposes into dispatch/transfer/interpreter/import/
//! compute time, Fig 7 is a transfer matrix, Figs 12–13 are concurrency
//! and occupancy timelines. This crate is the layer that produces those
//! artifacts for *any* run — simulated ([`vine-core`]'s engine, integer
//! microseconds of virtual time) or real ([`vine-exec`]'s threaded
//! runtime, wall-clock microseconds) — behind one set of abstractions:
//!
//! * [`span`] — the structured event model: [`Span`]s (name, category,
//!   start/end, attributes), [`InstantEvent`]s, and counter samples.
//! * [`recorder`] — the pluggable [`Recorder`] trait with a zero-cost
//!   [`NullRecorder`] default and an in-memory [`MemoryRecorder`] that
//!   feeds the exporters.
//! * [`clock`] — the [`Clock`] abstraction unifying simulated and real
//!   time: [`WallClock`] (monotonic `Instant`) and [`ManualClock`]
//!   (driven by the discrete-event loop).
//! * [`metrics`] — a registry of counters, gauges, and log-binned
//!   histograms with deterministic text export and parsing.
//! * [`chrome`] / [`csv`] — exporters: Chrome `trace_event` JSON
//!   (loadable in Perfetto / `chrome://tracing`) and CSV, hand-rolled
//!   without serde.
//! * [`json`] — a minimal validating JSON parser used to verify exported
//!   traces in tests.
//! * [`attrib`] — per-task overhead attribution into the paper's cost
//!   phases (dispatch, input transfer, interpreter startup, imports,
//!   compute, output transfer), with the invariant that phases sum to
//!   task wall time exactly.
//! * [`critical`] — critical-path extraction over a completed DAG.
//! * [`digest`] — [`RunDigest`], a compact phase-by-phase summary of a
//!   run, and [`RunDigest::diff`] for cross-run comparison (same seed or
//!   cross-policy).
//! * [`bridge`] — [`FigureRecorder`], a [`Recorder`] that folds spans and
//!   counters into the `vine-simcore::trace` sinks backing the paper's
//!   figures, so the engine emits observability events once and every
//!   figure is derived from them.

pub mod attrib;
pub mod bridge;
pub mod chrome;
pub mod clock;
pub mod critical;
pub mod csv;
pub mod digest;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use attrib::{Phase, PhaseBreakdown, TaskAttribution, NPHASES};
pub use bridge::{FigureRecorder, FigureSinks};
pub use clock::{Clock, ManualClock, WallClock};
pub use critical::CriticalPath;
pub use digest::{DigestDiff, RunDigest, RunObs};
pub use metrics::{Metric, MetricsRegistry};
pub use recorder::{MemoryRecorder, NullRecorder, Recorder};
pub use span::{Attr, AttrValue, InstantEvent, Span};
