#!/usr/bin/env bash
# Workspace hygiene gate: formatting, clippy (warnings are errors), tests.
# Run from the repository root. Pass extra cargo args through, e.g.
#   scripts/check.sh --offline
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets "$@" -- -D warnings

echo "== cargo build --all-targets =="
cargo build --workspace --all-targets "$@"

echo "== cargo test =="
cargo test --workspace -q "$@"

echo "== criterion microbench smoke (--test mode) =="
cargo bench -q -p vine-bench --bench event_queue --bench arena_lookup "$@" -- --test

echo "== vine-audit (determinism/concurrency gate, ratcheted baseline) =="
cargo run -q -p vine-audit "$@" -- --deny --baseline results/audit_baseline.txt

echo "check.sh: all green"
