#!/usr/bin/env bash
# CI perf gate: run the DV3-Small smoke benchmark and fail on a >10%
# simulated-makespan regression against the committed baseline.
#
# The gated number is the *simulated* makespan, which is deterministic for
# a fixed (workload, seed) — the gate therefore catches behavioral
# regressions (scheduling, staging, recovery changes), not runner noise.
# events_per_sec in the JSON is wall-clock engine throughput and is
# informational only.
#
# Usage: scripts/bench_gate.sh [baseline.json] [out.json]
# To refresh the baseline after an intentional change:
#   scripts/bench_gate.sh && cp BENCH_ci.json results/bench_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-results/bench_baseline.json}
OUT=${2:-BENCH_ci.json}

if [ ! -s "$BASELINE" ]; then
  echo "bench gate: no baseline at $BASELINE" >&2
  exit 1
fi

cargo build --release -p vine-bench --bin vine-sim
./target/release/vine-sim --workload dv3-small --scale 4 --workers 6 \
  --stack 3 --bench-json "$OUT"

extract() {
  awk -F'[:,]' -v key="\"$1\"" '$0 ~ key { gsub(/[ \t]/, "", $2); print $2; exit }' "$2"
}

new=$(extract makespan_s "$OUT")
old=$(extract makespan_s "$BASELINE")
echo "makespan: baseline ${old}s, current ${new}s"

awk -v new="$new" -v old="$old" 'BEGIN {
  if (old + 0 <= 0) { print "bench gate: bad baseline makespan"; exit 1 }
  ratio = new / old
  printf "bench gate: ratio %.4f (fails above 1.10)\n", ratio
  exit (ratio > 1.10) ? 1 : 0
}'

echo "bench gate: ok"
