#!/usr/bin/env bash
# CI perf gate, two halves:
#
# 1. Behavioral gate — run the DV3-Small smoke benchmark and fail on a
#    >10% *simulated-makespan* regression against the committed baseline.
#    Simulated makespan is deterministic for a fixed (workload, seed), so
#    this catches scheduling/staging/recovery changes, not runner noise.
#
# 2. Throughput gate (ISSUE 10) — run dv3-small, dv3-full, and agc-scale
#    three times each, keep the best (lowest) wall-clock of the simulation
#    proper, write the per-workload array to BENCH_ci.json, and fail on a
#    >25% sim_wall_ms regression against the baseline array. Wall clock is
#    noisy on shared runners, hence best-of-three and the wide margin; the
#    tracked fields are sim_wall_ms and sim_events_per_wall_sec.
#
# Also runs the streaming gates (ISSUE 6), the shard gate (ISSUE 8), and
# the watch gate (ISSUE 9) — see the sections below.
#
# Usage: scripts/bench_gate.sh [--throughput-only|--no-throughput]
#                              [baseline.json] [out.json]
#   --throughput-only  build + throughput section only (the perf-gate CI job)
#   --no-throughput    everything except the throughput section (bench-gate
#                      CI job; measures makespan from a single run and does
#                      not rewrite BENCH_ci.json)
# To refresh the baseline after an intentional change:
#   scripts/bench_gate.sh && cp BENCH_ci.json results/bench_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=all
POS=()
for arg in "$@"; do
  case "$arg" in
    --throughput-only) MODE=throughput ;;
    --no-throughput) MODE=classic ;;
    *) POS+=("$arg") ;;
  esac
done
BASELINE=${POS[0]-results/bench_baseline.json}
OUT=${POS[1]-BENCH_ci.json}

if [ ! -s "$BASELINE" ]; then
  echo "bench gate: no baseline at $BASELINE" >&2
  exit 1
fi

cargo build --release -p vine-bench --bin vine-sim

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# extract KEY FILE — first value of KEY in a single-object JSON file.
extract() {
  awk -F'[:,]' -v key="\"$1\"" '$0 ~ key { gsub(/[ \t]/, "", $2); print $2; exit }' "$2"
}

# extract_wl KEY WORKLOAD FILE — value of KEY inside the entry of a
# per-workload JSON array whose "workload" field equals WORKLOAD.
# Relies on vine-sim's one-field-per-line output; "workload" opens each
# entry, so tracking the most recent one scopes the key match.
extract_wl() {
  awk -v key="\"$1\"" -v wl="$2" '
    /"workload"/ { cur = $0; sub(/.*: *"/, "", cur); sub(/".*/, "", cur) }
    $0 ~ key && cur == wl {
      v = $0; sub(/.*: */, "", v); gsub(/[ ,\t]/, "", v); print v; exit
    }' "$3"
}

# bench_best WORKLOAD [vine-sim args...] — run the workload three times,
# keep the JSON of the run with the lowest sim_wall_ms (wall-clock of the
# simulation proper) in $TMP/WORKLOAD.best.json.
bench_best() {
  wl=$1
  shift
  best_ms=""
  for i in 1 2 3; do
    ./target/release/vine-sim --workload "$wl" "$@" --no-preflight \
      --bench-json "$TMP/run.json" > /dev/null
    ms=$(extract sim_wall_ms "$TMP/run.json")
    if [ -z "$best_ms" ] || awk -v a="$ms" -v b="$best_ms" 'BEGIN { exit !(a + 0 < b + 0) }'; then
      best_ms=$ms
      cp "$TMP/run.json" "$TMP/$wl.best.json"
    fi
  done
  echo "throughput: $wl best-of-3 sim_wall ${best_ms}ms" \
    "($(extract sim_events_per_wall_sec "$TMP/$wl.best.json") events/s)"
}

WORKLOADS="dv3-small dv3-full agc-scale"

if [ "$MODE" != classic ]; then
  # ---- Throughput section: best-of-3 wall clock per workload ----------
  # dv3-small's gate cell simulates in ~0.5ms, far below timer noise, so
  # it averages 200 in-process repetitions per invocation (--bench-reps);
  # the campus-scale workloads run long enough to be measured singly.
  bench_best dv3-small --scale 4 --workers 6 --stack 3 --bench-reps 200
  bench_best dv3-full
  bench_best agc-scale

  {
    echo '['
    n=0
    for wl in $WORKLOADS; do
      n=$((n + 1))
      [ "$n" -gt 1 ] && echo ','
      sed 's/^/  /' "$TMP/$wl.best.json"
    done
    echo ']'
  } > "$OUT"
  echo "throughput: wrote $OUT"

  for wl in $WORKLOADS; do
    new=$(extract_wl sim_wall_ms "$wl" "$OUT")
    old=$(extract_wl sim_wall_ms "$wl" "$BASELINE")
    if [ -z "$old" ]; then
      echo "throughput gate: $wl missing from baseline $BASELINE (refresh it)" >&2
      exit 1
    fi
    awk -v wl="$wl" -v new="$new" -v old="$old" 'BEGIN {
      if (old + 0 <= 0) { print "throughput gate: bad baseline sim_wall_ms for " wl; exit 1 }
      ratio = new / old
      printf "throughput gate: %s sim_wall %.3fms vs baseline %.3fms (ratio %.3f, fails above 1.25)\n", wl, new, old, ratio
      exit (ratio > 1.25) ? 1 : 0
    }'
  done
fi

if [ "$MODE" = throughput ]; then
  echo "bench gate: throughput ok"
  exit 0
fi

# ---- Behavioral gate: simulated makespan is deterministic -------------
if [ "$MODE" = classic ]; then
  # No throughput section ran; take makespan from a fresh single run so
  # this job does not rewrite $OUT.
  ./target/release/vine-sim --workload dv3-small --scale 4 --workers 6 \
    --stack 3 --bench-json "$TMP/makespan.json" > /dev/null
  new=$(extract makespan_s "$TMP/makespan.json")
else
  new=$(extract_wl makespan_s dv3-small "$OUT")
fi
old=$(extract_wl makespan_s dv3-small "$BASELINE")
echo "makespan: baseline ${old}s, current ${new}s"

awk -v new="$new" -v old="$old" 'BEGIN {
  if (old + 0 <= 0) { print "bench gate: bad baseline makespan"; exit 1 }
  ratio = new / old
  printf "bench gate: ratio %.4f (fails above 1.10)\n", ratio
  exit (ratio > 1.10) ? 1 : 0
}'

# Streaming gate 1: a run with no observer must replay byte-identical to
# the pre-streaming baseline digest — streaming is strictly pay-for-play.
STREAM_BASELINE=results/stream_baseline_digest.txt
if [ -s "$STREAM_BASELINE" ]; then
  rm -rf stream-gate-traces
  ./target/release/vine-sim --workload dv3-small --scale 4 --workers 6 \
    --stack 3 --trace-out stream-gate-traces
  cmp "$STREAM_BASELINE" stream-gate-traces/dv3-small-stack3-seed42.digest.txt
  echo "stream gate: no-observer digest byte-identical"
else
  echo "stream gate: no baseline at $STREAM_BASELINE" >&2
  exit 1
fi

# Streaming gate 2: convergence early stop must save >= 20% core-seconds
# on the stragglers preset (fig-stream exits non-zero otherwise, and also
# asserts monotone partials and threshold-1.0 == baseline).
cargo build --release -p vine-bench --bin fig-stream
./target/release/fig-stream
echo "stream gate: early-stop saving >= 20%"

# Shard gate (ISSUE 8): the federated facility's CI cell (shards=4,
# 1000 tenants, seed 42) must replay bit-identically across two process
# invocations, and its warm-hit ratio must stay within 2% of the
# committed baseline (results/shards_gate.txt). fig-shards --gate also
# replays the cell twice in-process and asserts digest equality itself.
# To refresh the baseline after an intentional change:
#   ./target/release/fig-shards --gate > results/shards_gate.txt
SHARD_BASELINE=results/shards_gate.txt
if [ ! -s "$SHARD_BASELINE" ]; then
  echo "shard gate: no baseline at $SHARD_BASELINE" >&2
  exit 1
fi
cargo build --release -p vine-bench --bin fig-shards
a=$(./target/release/fig-shards --gate)
b=$(./target/release/fig-shards --gate)
echo "shard gate: $a"
if [ "${a%% *}" != "${b%% *}" ]; then
  echo "shard gate: digests differ across process invocations" >&2
  echo "  first:  $a" >&2
  echo "  second: $b" >&2
  exit 1
fi
echo "shard gate: cross-process replay bit-identical"
wh_new=${a##*warm_hit=}
wh_old=$(sed 's/.*warm_hit=//' "$SHARD_BASELINE")
awk -v new="$wh_new" -v old="$wh_old" 'BEGIN {
  if (old + 0 <= 0) { print "shard gate: bad baseline warm-hit"; exit 1 }
  drift = (new - old) / old; if (drift < 0) drift = -drift
  printf "shard gate: warm-hit %.6f vs baseline %.6f (drift %.4f, fails above 0.02)\n", new, old, drift
  exit (drift > 0.02) ? 1 : 0
}'

# Watch gate (ISSUE 9): the reactive standing-analysis CI cell (batched
# growth preset, seed 42) must replay bit-identically across two process
# invocations, its served estimate must match a cold full recompute
# bit-for-bit (asserted inside the binary), and the reactive path must
# save >= 60% of task executions vs cold re-runs. The saved ratio must
# also stay within 2% of the committed baseline (results/watch_gate.txt).
# To refresh the baseline after an intentional change:
#   ./target/release/fig-watch --gate > results/watch_gate.txt
WATCH_BASELINE=results/watch_gate.txt
if [ ! -s "$WATCH_BASELINE" ]; then
  echo "watch gate: no baseline at $WATCH_BASELINE" >&2
  exit 1
fi
cargo build --release -p vine-bench --bin fig-watch
a=$(./target/release/fig-watch --gate)
b=$(./target/release/fig-watch --gate)
echo "watch gate: $a"
if [ "${a%% *}" != "${b%% *}" ]; then
  echo "watch gate: digests differ across process invocations" >&2
  echo "  first:  $a" >&2
  echo "  second: $b" >&2
  exit 1
fi
echo "watch gate: cross-process replay bit-identical"
sv_new=${a##*saved=}
sv_old=$(sed 's/.*saved=//' "$WATCH_BASELINE")
awk -v new="$sv_new" -v old="$sv_old" 'BEGIN {
  if (old + 0 <= 0) { print "watch gate: bad baseline saved ratio"; exit 1 }
  drift = (new - old) / old; if (drift < 0) drift = -drift
  printf "watch gate: saved %.6f vs baseline %.6f (drift %.4f, fails above 0.02)\n", new, old, drift
  exit (drift > 0.02) ? 1 : 0
}'

echo "bench gate: ok"
