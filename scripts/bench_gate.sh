#!/usr/bin/env bash
# CI perf gate: run the DV3-Small smoke benchmark and fail on a >10%
# simulated-makespan regression against the committed baseline.
#
# The gated number is the *simulated* makespan, which is deterministic for
# a fixed (workload, seed) — the gate therefore catches behavioral
# regressions (scheduling, staging, recovery changes), not runner noise.
# events_per_sec in the JSON is wall-clock engine throughput and is
# informational only.
#
# Also runs the streaming gates (ISSUE 6): a no-observer run's obs digest
# must be byte-identical to the committed pre-streaming baseline
# (results/stream_baseline_digest.txt), and fig-stream's early stop must
# save >= 20% core-seconds on the stragglers preset (asserted inside the
# binary).
#
# Usage: scripts/bench_gate.sh [baseline.json] [out.json]
# To refresh the baseline after an intentional change:
#   scripts/bench_gate.sh && cp BENCH_ci.json results/bench_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-results/bench_baseline.json}
OUT=${2:-BENCH_ci.json}

if [ ! -s "$BASELINE" ]; then
  echo "bench gate: no baseline at $BASELINE" >&2
  exit 1
fi

cargo build --release -p vine-bench --bin vine-sim
./target/release/vine-sim --workload dv3-small --scale 4 --workers 6 \
  --stack 3 --bench-json "$OUT"

extract() {
  awk -F'[:,]' -v key="\"$1\"" '$0 ~ key { gsub(/[ \t]/, "", $2); print $2; exit }' "$2"
}

new=$(extract makespan_s "$OUT")
old=$(extract makespan_s "$BASELINE")
echo "makespan: baseline ${old}s, current ${new}s"

awk -v new="$new" -v old="$old" 'BEGIN {
  if (old + 0 <= 0) { print "bench gate: bad baseline makespan"; exit 1 }
  ratio = new / old
  printf "bench gate: ratio %.4f (fails above 1.10)\n", ratio
  exit (ratio > 1.10) ? 1 : 0
}'

# Streaming gate 1: a run with no observer must replay byte-identical to
# the pre-streaming baseline digest — streaming is strictly pay-for-play.
STREAM_BASELINE=results/stream_baseline_digest.txt
if [ -s "$STREAM_BASELINE" ]; then
  rm -rf stream-gate-traces
  ./target/release/vine-sim --workload dv3-small --scale 4 --workers 6 \
    --stack 3 --trace-out stream-gate-traces
  cmp "$STREAM_BASELINE" stream-gate-traces/dv3-small-stack3-seed42.digest.txt
  echo "stream gate: no-observer digest byte-identical"
else
  echo "stream gate: no baseline at $STREAM_BASELINE" >&2
  exit 1
fi

# Streaming gate 2: convergence early stop must save >= 20% core-seconds
# on the stragglers preset (fig-stream exits non-zero otherwise, and also
# asserts monotone partials and threshold-1.0 == baseline).
cargo build --release -p vine-bench --bin fig-stream
./target/release/fig-stream
echo "stream gate: early-stop saving >= 20%"

# Shard gate (ISSUE 8): the federated facility's CI cell (shards=4,
# 1000 tenants, seed 42) must replay bit-identically across two process
# invocations, and its warm-hit ratio must stay within 2% of the
# committed baseline (results/shards_gate.txt). fig-shards --gate also
# replays the cell twice in-process and asserts digest equality itself.
# To refresh the baseline after an intentional change:
#   ./target/release/fig-shards --gate > results/shards_gate.txt
SHARD_BASELINE=results/shards_gate.txt
if [ ! -s "$SHARD_BASELINE" ]; then
  echo "shard gate: no baseline at $SHARD_BASELINE" >&2
  exit 1
fi
cargo build --release -p vine-bench --bin fig-shards
a=$(./target/release/fig-shards --gate)
b=$(./target/release/fig-shards --gate)
echo "shard gate: $a"
if [ "${a%% *}" != "${b%% *}" ]; then
  echo "shard gate: digests differ across process invocations" >&2
  echo "  first:  $a" >&2
  echo "  second: $b" >&2
  exit 1
fi
echo "shard gate: cross-process replay bit-identical"
wh_new=${a##*warm_hit=}
wh_old=$(sed 's/.*warm_hit=//' "$SHARD_BASELINE")
awk -v new="$wh_new" -v old="$wh_old" 'BEGIN {
  if (old + 0 <= 0) { print "shard gate: bad baseline warm-hit"; exit 1 }
  drift = (new - old) / old; if (drift < 0) drift = -drift
  printf "shard gate: warm-hit %.6f vs baseline %.6f (drift %.4f, fails above 0.02)\n", new, old, drift
  exit (drift > 0.02) ? 1 : 0
}'

# Watch gate (ISSUE 9): the reactive standing-analysis CI cell (batched
# growth preset, seed 42) must replay bit-identically across two process
# invocations, its served estimate must match a cold full recompute
# bit-for-bit (asserted inside the binary), and the reactive path must
# save >= 60% of task executions vs cold re-runs. The saved ratio must
# also stay within 2% of the committed baseline (results/watch_gate.txt).
# To refresh the baseline after an intentional change:
#   ./target/release/fig-watch --gate > results/watch_gate.txt
WATCH_BASELINE=results/watch_gate.txt
if [ ! -s "$WATCH_BASELINE" ]; then
  echo "watch gate: no baseline at $WATCH_BASELINE" >&2
  exit 1
fi
cargo build --release -p vine-bench --bin fig-watch
a=$(./target/release/fig-watch --gate)
b=$(./target/release/fig-watch --gate)
echo "watch gate: $a"
if [ "${a%% *}" != "${b%% *}" ]; then
  echo "watch gate: digests differ across process invocations" >&2
  echo "  first:  $a" >&2
  echo "  second: $b" >&2
  exit 1
fi
echo "watch gate: cross-process replay bit-identical"
sv_new=${a##*saved=}
sv_old=$(sed 's/.*saved=//' "$WATCH_BASELINE")
awk -v new="$sv_new" -v old="$sv_old" 'BEGIN {
  if (old + 0 <= 0) { print "watch gate: bad baseline saved ratio"; exit 1 }
  drift = (new - old) / old; if (drift < 0) drift = -drift
  printf "watch gate: saved %.6f vs baseline %.6f (drift %.4f, fails above 0.02)\n", new, old, drift
  exit (drift > 0.02) ? 1 : 0
}'

echo "bench gate: ok"
